//! Unit tests of the derived-predicate event transformations (`ι_d`, `δ_d`,
//! `dⁿ`) on hand-crafted definitions — the machinery grounded in Olivé's
//! event rules that the in-crate tests only exercise through the full
//! pipeline.

use tintin_logic::*;

fn cat() -> SchemaCatalog {
    let mut c = SchemaCatalog::new();
    c.add_table(
        "r",
        TableInfo {
            columns: vec!["a".into(), "b".into()],
            primary_key: vec![0],
            foreign_keys: vec![],
        },
    );
    c.add_table(
        "s",
        TableInfo {
            columns: vec!["x".into()],
            primary_key: vec![0],
            foreign_keys: vec![],
        },
    );
    c
}

/// d(a) ← r(a, b) ∧ ¬s(a): a projection-with-negation derived predicate.
fn setup() -> (Registry, DerivedId, Denial) {
    let mut reg = Registry::new();
    let a = reg.fresh_var("a");
    let b = reg.fresh_var("b");
    let d = reg.add_derived(DerivedDef {
        name: "d".into(),
        arity: 1,
        rules: vec![Rule {
            head: vec![Term::Var(a)],
            body: vec![
                Literal::Pos(Atom::new(
                    Pred::Base("r".into()),
                    vec![Term::Var(a), Term::Var(b)],
                )),
                Literal::Neg(Atom::new(Pred::Base("s".into()), vec![Term::Var(a)])),
            ],
        }],
    });
    // Denial: s(x) ∧ ¬d(x) → ⊥ (every s-element must be derivable).
    let x = reg.fresh_var("x");
    let denial = Denial {
        assertion: "test".into(),
        index: 0,
        body: vec![
            Literal::Pos(Atom::new(Pred::Base("s".into()), vec![Term::Var(x)])),
            Literal::Neg(Atom::new(Pred::Derived(d), vec![Term::Var(x)])),
        ],
    };
    (reg, d, denial)
}

#[test]
fn denial_with_derived_negation_generates_edcs() {
    let (mut reg, _d, denial) = setup();
    let cat = cat();
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    let edcs = generator.generate(&denial).unwrap();
    assert!(!edcs.is_empty());
    // Every EDC has an event gate and no positive derived atoms.
    for e in &edcs {
        assert!(!e.gate.is_empty(), "{}", reg.body_str(&e.body));
        for l in &e.body {
            if let Literal::Pos(atom) = l {
                assert!(
                    !matches!(atom.pred, Pred::Derived(_)),
                    "positive derived atom not inlined: {}",
                    reg.body_str(&e.body)
                );
            }
        }
    }
    // Some EDC must react to insertions into s (could make s(x) true with
    // ¬d(x)) and some to events on r (δ_r can falsify d).
    let gates: Vec<(bool, String)> = edcs.iter().flat_map(|e| e.gate.clone()).collect();
    assert!(gates.contains(&(true, "s".into())), "{gates:?}");
    assert!(gates.contains(&(false, "r".into())), "{gates:?}");
}

#[test]
fn delta_d_inlines_to_deletion_and_insertion_events() {
    // δ_d arises when the denial's ¬d picks the event branch. d can be
    // falsified by deleting r-tuples or inserting s-tuples; both table
    // events must therefore appear among the EDC gates.
    let (mut reg, _d, denial) = setup();
    let cat = cat();
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    let edcs = generator.generate(&denial).unwrap();
    let gates: Vec<(bool, String)> = edcs.iter().flat_map(|e| e.gate.clone()).collect();
    assert!(
        gates.contains(&(true, "s".into())),
        "ι_s can falsify d (and make s(x) true): {gates:?}"
    );
    assert!(
        gates.contains(&(false, "r".into())),
        "δ_r can falsify d: {gates:?}"
    );
}

#[test]
fn positive_derived_literal_in_denial_is_supported() {
    // Denial with POSITIVE derived literal: d(x) ∧ x > 5 → ⊥.
    let (mut reg, d, _) = setup();
    let cat = cat();
    let x = reg.fresh_var("x2");
    let denial = Denial {
        assertion: "posd".into(),
        index: 0,
        body: vec![
            Literal::Pos(Atom::new(Pred::Derived(d), vec![Term::Var(x)])),
            Literal::Cmp(CmpOp::Gt, Term::Var(x), Term::Const(Konst::Int(5))),
        ],
    };
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    let edcs = generator.generate(&denial).unwrap();
    assert!(!edcs.is_empty());
    // ι_d inlines to: new r-tuple (ins_r) or deleted s-tuple (del_s).
    let gates: Vec<(bool, String)> = edcs.iter().flat_map(|e| e.gate.clone()).collect();
    assert!(gates.contains(&(true, "r".into())), "{gates:?}");
    assert!(gates.contains(&(false, "s".into())), "{gates:?}");
}

#[test]
fn multi_rule_derived_predicate() {
    // d2(v) ← r(v, _) ;  d2(v) ← s(v): union-style derived predicate under
    // negation.
    let mut reg = Registry::new();
    let v1 = reg.fresh_var("v1");
    let w = reg.fresh_var("w");
    let v2 = reg.fresh_var("v2");
    let d2 = reg.add_derived(DerivedDef {
        name: "d2".into(),
        arity: 1,
        rules: vec![
            Rule {
                head: vec![Term::Var(v1)],
                body: vec![Literal::Pos(Atom::new(
                    Pred::Base("r".into()),
                    vec![Term::Var(v1), Term::Var(w)],
                ))],
            },
            Rule {
                head: vec![Term::Var(v2)],
                body: vec![Literal::Pos(Atom::new(
                    Pred::Base("s".into()),
                    vec![Term::Var(v2)],
                ))],
            },
        ],
    });
    let x = reg.fresh_var("x");
    let denial = Denial {
        assertion: "multi".into(),
        index: 0,
        body: vec![
            Literal::Pos(Atom::new(Pred::Base("s".into()), vec![Term::Var(x)])),
            Literal::Neg(Atom::new(Pred::Derived(d2), vec![Term::Var(x)])),
        ],
    };
    let cat = cat();
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    let edcs = generator.generate(&denial).unwrap();
    // The denial is actually unsatisfiable in the new state: s(x) implies
    // d2(x) via rule 2. The optimizer may or may not see this statically;
    // what matters is soundness — EDCs exist or not, but none may lack a
    // gate.
    for e in &edcs {
        assert!(!e.gate.is_empty());
    }
}

#[test]
fn constants_in_rule_heads_unify_or_prune() {
    // d3() ← r(1, b): a propositional derived predicate with a constant.
    let mut reg = Registry::new();
    let b = reg.fresh_var("b");
    let d3 = reg.add_derived(DerivedDef {
        name: "d3".into(),
        arity: 1,
        rules: vec![Rule {
            head: vec![Term::Const(Konst::Int(1))],
            body: vec![Literal::Pos(Atom::new(
                Pred::Base("r".into()),
                vec![Term::Const(Konst::Int(1)), Term::Var(b)],
            ))],
        }],
    });
    let x = reg.fresh_var("x");
    // s(x) ∧ d3(x) → ⊥ : only x = 1 can ever match.
    let denial = Denial {
        assertion: "konst".into(),
        index: 0,
        body: vec![
            Literal::Pos(Atom::new(Pred::Base("s".into()), vec![Term::Var(x)])),
            Literal::Pos(Atom::new(Pred::Derived(d3), vec![Term::Var(x)])),
        ],
    };
    let cat = cat();
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    let edcs = generator.generate(&denial).unwrap();
    assert!(!edcs.is_empty());
    // After inlining, the EDC bodies bind x to the constant 1.
    for e in &edcs {
        let body = reg.body_str(&e.body);
        assert!(body.contains('1'), "{body}");
    }
}

#[test]
fn expansion_guard_fires_on_explosion() {
    // A denial with many literals over a derived predicate with many rules
    // must hit MAX_EDC_BODIES instead of hanging.
    let mut reg = Registry::new();
    let mut rules = Vec::new();
    for _ in 0..12 {
        let v = reg.fresh_var("v");
        rules.push(Rule {
            head: vec![Term::Var(v)],
            body: vec![Literal::Pos(Atom::new(
                Pred::Base("s".into()),
                vec![Term::Var(v)],
            ))],
        });
    }
    let big = reg.add_derived(DerivedDef {
        name: "big".into(),
        arity: 1,
        rules,
    });
    let mut body = Vec::new();
    for _ in 0..4 {
        let x = reg.fresh_var("x");
        body.push(Literal::Pos(Atom::new(
            Pred::Base("s".into()),
            vec![Term::Var(x)],
        )));
        body.push(Literal::Pos(Atom::new(
            Pred::Derived(big),
            vec![Term::Var(x)],
        )));
    }
    let denial = Denial {
        assertion: "boom".into(),
        index: 0,
        body,
    };
    let cat = cat();
    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
    match generator.generate(&denial) {
        Err(e) => assert!(
            e.message.contains("EDC") || e.message.contains("bodies"),
            "{e}"
        ),
        Ok(edcs) => assert!(edcs.len() <= MAX_EDC_BODIES),
    }
}
