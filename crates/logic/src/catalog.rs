//! Schema information the logic layer needs about the database: column
//! names/positions, primary keys and foreign keys. Built by the `tintin`
//! crate from the engine's catalog (keeping this crate engine-independent).

use std::collections::BTreeMap;

/// A foreign key, positionally resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkInfo {
    /// Column positions in the child table.
    pub columns: Vec<usize>,
    pub ref_table: String,
    /// Column positions in the parent table.
    pub ref_columns: Vec<usize>,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInfo {
    pub columns: Vec<String>,
    /// Primary-key column positions (empty = none).
    pub primary_key: Vec<usize>,
    pub foreign_keys: Vec<FkInfo>,
}

impl TableInfo {
    pub fn new(columns: Vec<String>) -> Self {
        TableInfo {
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// Catalog of table schemas visible to assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaCatalog {
    tables: BTreeMap<String, TableInfo>,
}

impl SchemaCatalog {
    pub fn new() -> Self {
        SchemaCatalog::default()
    }

    pub fn add_table(&mut self, name: impl Into<String>, info: TableInfo) {
        self.tables.insert(name.into(), info);
    }

    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &String> {
        self.tables.keys()
    }

    /// Does `parent`'s primary key equal `ref_columns`? Used by the FK
    /// optimizer (pruning needs the referenced columns to be a key).
    pub fn fk_targets_key(&self, fk: &FkInfo) -> bool {
        self.table(&fk.ref_table)
            .map(|t| !t.primary_key.is_empty() && t.primary_key == fk.ref_columns)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        let mut cat = SchemaCatalog::new();
        cat.add_table(
            "orders",
            TableInfo {
                columns: vec!["o_orderkey".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        assert_eq!(
            cat.table("orders").unwrap().column_index("o_orderkey"),
            Some(0)
        );
        assert!(cat.table("missing").is_none());
    }

    #[test]
    fn fk_targets_key_checks_pk() {
        let mut cat = SchemaCatalog::new();
        cat.add_table(
            "orders",
            TableInfo {
                columns: vec!["o_orderkey".into(), "o_custkey".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        let good = FkInfo {
            columns: vec![0],
            ref_table: "orders".into(),
            ref_columns: vec![0],
        };
        let bad = FkInfo {
            columns: vec![0],
            ref_table: "orders".into(),
            ref_columns: vec![1],
        };
        assert!(cat.fk_targets_key(&good));
        assert!(!cat.fk_targets_key(&bad));
    }
}
