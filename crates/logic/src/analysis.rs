//! Install-time constraint analysis: conjunction satisfiability and
//! residual event gates.
//!
//! This module implements the static analysis that runs once per
//! `CREATE ASSERTION`, over denial and EDC bodies (following Martinenghi's
//! simplified integrity checking for denial constraints):
//!
//! * **Satisfiability** ([`analyze_body`]) — equality congruence closure
//!   over the body's variables and constants (union–find), per-class
//!   interval reasoning over `CmpOp` chains, NULL-requirement tracking, and
//!   primary-key subsumption (two old-state atoms over the same relation
//!   with congruent key columns denote the *same* row, so contradictory
//!   non-key constraints make the body unsatisfiable). A body proved
//!   unsatisfiable is dropped before SQL generation; the reason is kept for
//!   the assertion linter (`EXPLAIN ASSERTION`).
//! * **Residual event gates** ([`residual_gates`]) — for each positive
//!   event atom of a satisfiable body, the column predicates every
//!   witnessing event row *must* satisfy (derived from the class
//!   constraints of the columns' variables). The commit path tests pending
//!   event rows against these predicates and skips the full vio-view plan
//!   when no row qualifies — the relevance index extended from
//!   table/event-kind granularity to predicate granularity.
//!
//! Everything here must be *sound*: a pruned body must truly be
//! unsatisfiable under the normalized-event invariants, and a residual
//! predicate must be a necessary condition for the event row to contribute
//! to the view. Both properties are exercised end-to-end by the sim
//! harness's analysis-on/off differential regime and its `over-prune`
//! known-bad mutant.

use crate::catalog::SchemaCatalog;
use crate::ir::*;
use std::collections::BTreeMap;
use std::fmt;

/// Why the analysis pruned a body (or flagged an assertion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneReason {
    /// The rule that fired (stable, kebab-case).
    pub rule: &'static str,
    /// Human-readable detail for diagnostics.
    pub detail: String,
}

impl PruneReason {
    pub fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        PruneReason {
            rule,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PruneReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// One column predicate of a residual event gate, evaluated directly
/// against stored event rows (NULL never satisfies a `Cmp` predicate,
/// mirroring SQL `WHERE`).
#[derive(Debug, Clone, PartialEq)]
pub enum ColPredicate {
    /// `row[col] op value` must hold.
    Cmp { col: usize, op: CmpOp, value: Konst },
    /// `row[col] IS [NOT] NULL` must hold.
    Null { col: usize, negated: bool },
}

impl ColPredicate {
    /// Render against a column-name list (for EXPLAIN output).
    pub fn display(&self, columns: &[String]) -> String {
        let name = |c: usize| columns.get(c).cloned().unwrap_or_else(|| format!("col{c}"));
        match self {
            ColPredicate::Cmp { col, op, value } => format!("{} {op} {value}", name(*col)),
            ColPredicate::Null { col, negated } => format!(
                "{} is {}null",
                name(*col),
                if *negated { "not " } else { "" }
            ),
        }
    }
}

/// The residual gate of one positive event atom: the view can only return
/// rows when the event table holds at least one row satisfying **all** of
/// `preds`. An empty predicate list is an always-open gate (the plain
/// emptiness shortcut already covers it).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualGate {
    /// `true` for `ins_<table>`, `false` for `del_<table>`.
    pub is_ins: bool,
    /// The base table of the event.
    pub table: String,
    /// Conjunction of necessary column predicates.
    pub preds: Vec<ColPredicate>,
}

impl ResidualGate {
    /// Render against the schema catalog (for EXPLAIN output).
    pub fn display(&self, cat: &SchemaCatalog) -> String {
        let prefix = if self.is_ins { "ins_" } else { "del_" };
        let cols = cat
            .table(&self.table)
            .map(|t| t.columns.clone())
            .unwrap_or_default();
        if self.preds.is_empty() {
            format!("{prefix}{} (any row)", self.table)
        } else {
            let preds: Vec<String> = self.preds.iter().map(|p| p.display(&cols)).collect();
            format!("{prefix}{} where {}", self.table, preds.join(" and "))
        }
    }
}

// ------------------------------------------------------------------ bounds

/// Numeric/string interval tracking for one congruence class (also used by
/// the optimizer's constant-folding pass for single variables).
#[derive(Debug, Default, Clone)]
pub struct VarBounds {
    /// Lower bound `(bound, strict)`.
    pub lo: Option<(Konst, bool)>,
    /// Upper bound `(bound, strict)`.
    pub hi: Option<(Konst, bool)>,
    /// Required constant value.
    pub eq: Option<Konst>,
    /// Excluded constant values.
    pub neq: Vec<Konst>,
}

impl VarBounds {
    /// Add `var op k`; returns false when the constraints become empty.
    pub fn add(&mut self, op: CmpOp, k: &Konst) -> bool {
        match op {
            CmpOp::Eq => {
                if let Some(e) = &self.eq {
                    if !konst_eq(e, k) {
                        return false;
                    }
                }
                if self.neq.iter().any(|n| konst_eq(n, k)) {
                    return false;
                }
                self.eq = Some(k.clone());
            }
            CmpOp::NotEq => {
                if let Some(e) = &self.eq {
                    if konst_eq(e, k) {
                        return false;
                    }
                }
                self.neq.push(k.clone());
            }
            CmpOp::Lt | CmpOp::LtEq => {
                let strict = op == CmpOp::Lt;
                let tighter = match &self.hi {
                    None => true,
                    Some((h, hs)) => match konst_cmp(k, h) {
                        Some(std::cmp::Ordering::Less) => true,
                        Some(std::cmp::Ordering::Equal) => strict && !hs,
                        _ => false,
                    },
                };
                if tighter {
                    self.hi = Some((k.clone(), strict));
                }
            }
            CmpOp::Gt | CmpOp::GtEq => {
                let strict = op == CmpOp::Gt;
                let tighter = match &self.lo {
                    None => true,
                    Some((l, ls)) => match konst_cmp(k, l) {
                        Some(std::cmp::Ordering::Greater) => true,
                        Some(std::cmp::Ordering::Equal) => strict && !ls,
                        _ => false,
                    },
                };
                if tighter {
                    self.lo = Some((k.clone(), strict));
                }
            }
        }
        self.consistent()
    }

    /// Fold another bound set into this one (class merge); returns false
    /// when the merged constraints become empty.
    pub fn merge(&mut self, other: &VarBounds) -> bool {
        if let Some(e) = &other.eq {
            if !self.add(CmpOp::Eq, e) {
                return false;
            }
        }
        for n in &other.neq {
            if !self.add(CmpOp::NotEq, n) {
                return false;
            }
        }
        if let Some((lo, strict)) = &other.lo {
            let op = if *strict { CmpOp::Gt } else { CmpOp::GtEq };
            if !self.add(op, lo) {
                return false;
            }
        }
        if let Some((hi, strict)) = &other.hi {
            let op = if *strict { CmpOp::Lt } else { CmpOp::LtEq };
            if !self.add(op, hi) {
                return false;
            }
        }
        true
    }

    /// Is the constraint set non-empty?
    pub fn consistent(&self) -> bool {
        if let (Some((lo, ls)), Some((hi, hs))) = (&self.lo, &self.hi) {
            match konst_cmp(lo, hi) {
                Some(std::cmp::Ordering::Greater) => return false,
                Some(std::cmp::Ordering::Equal) if *ls || *hs => return false,
                _ => {}
            }
        }
        if let Some(e) = &self.eq {
            if let Some((lo, ls)) = &self.lo {
                match konst_cmp(e, lo) {
                    Some(std::cmp::Ordering::Less) => return false,
                    Some(std::cmp::Ordering::Equal) if *ls => return false,
                    _ => {}
                }
            }
            if let Some((hi, hs)) = &self.hi {
                match konst_cmp(e, hi) {
                    Some(std::cmp::Ordering::Greater) => return false,
                    Some(std::cmp::Ordering::Equal) if *hs => return false,
                    _ => {}
                }
            }
        }
        true
    }
}

/// Compare two constants (numeric cross-type; `None` for mixed
/// string/number, which SQL treats as a type mismatch).
pub fn konst_cmp(a: &Konst, b: &Konst) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Konst::Int(x), Konst::Int(y)) => Some(x.cmp(y)),
        (Konst::Real(x), Konst::Real(y)) => x.partial_cmp(y),
        (Konst::Int(x), Konst::Real(y)) => (*x as f64).partial_cmp(y),
        (Konst::Real(x), Konst::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Konst::Str(x), Konst::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// SQL-equality of two constants.
pub fn konst_eq(a: &Konst, b: &Konst) -> bool {
    konst_cmp(a, b) == Some(std::cmp::Ordering::Equal)
}

/// Evaluate `a op b` over constants; `None` when incomparable.
pub fn eval_cmp(op: CmpOp, a: &Konst, b: &Konst) -> Option<bool> {
    let ord = konst_cmp(a, b)?;
    Some(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::GtEq => ord != std::cmp::Ordering::Less,
    })
}

// -------------------------------------------------------------- congruence

/// Per-class constraint record of the congruence closure.
#[derive(Debug, Default, Clone)]
struct ClassInfo {
    bounds: VarBounds,
    /// The class must be NULL (from an `IS NULL` literal).
    must_null: bool,
    /// The class must be non-NULL (from a satisfied comparison or an
    /// `IS NOT NULL` literal — SQL comparisons are never true on NULL).
    must_nonnull: bool,
}

/// Union–find congruence closure over a body's variables, with per-class
/// interval bounds and NULL requirements.
#[derive(Debug, Default, Clone)]
pub struct Congruence {
    parent: Vec<usize>,
    info: Vec<ClassInfo>,
    slots: BTreeMap<Var, usize>,
}

impl Congruence {
    fn slot(&mut self, v: Var) -> usize {
        if let Some(s) = self.slots.get(&v) {
            return *s;
        }
        let s = self.parent.len();
        self.parent.push(s);
        self.info.push(ClassInfo::default());
        self.slots.insert(v, s);
        s
    }

    fn find(&mut self, mut s: usize) -> usize {
        while self.parent[s] != s {
            self.parent[s] = self.parent[self.parent[s]];
            s = self.parent[s];
        }
        s
    }

    /// Are two variables provably equal?
    pub fn same_class(&mut self, a: Var, b: Var) -> bool {
        let (sa, sb) = (self.slot(a), self.slot(b));
        self.find(sa) == self.find(sb)
    }

    /// Record `a = b`; returns false when the merged class is empty.
    pub fn union(&mut self, a: Var, b: Var) -> bool {
        let (sa, sb) = (self.slot(a), self.slot(b));
        let (ra, rb) = (self.find(sa), self.find(sb));
        if ra == rb {
            return true;
        }
        let other = self.info[rb].clone();
        self.parent[rb] = ra;
        let root = &mut self.info[ra];
        root.must_null |= other.must_null;
        root.must_nonnull |= other.must_nonnull;
        if root.must_null && root.must_nonnull {
            return false;
        }
        root.bounds.merge(&other.bounds)
    }

    /// Record `v op k`; returns false when the class becomes empty.
    pub fn constrain(&mut self, v: Var, op: CmpOp, k: &Konst) -> bool {
        let s = self.slot(v);
        let r = self.find(s);
        let info = &mut self.info[r];
        // A true SQL comparison implies the operand is non-NULL.
        info.must_nonnull = true;
        if info.must_null {
            return false;
        }
        info.bounds.add(op, k)
    }

    /// Record `v IS [NOT] NULL`; returns false when the class is empty.
    pub fn require_null(&mut self, v: Var, negated: bool) -> bool {
        let s = self.slot(v);
        let r = self.find(s);
        let info = &mut self.info[r];
        if negated {
            info.must_nonnull = true;
        } else {
            info.must_null = true;
            // A NULL value cannot also satisfy any comparison.
            if info.bounds.eq.is_some()
                || info.bounds.lo.is_some()
                || info.bounds.hi.is_some()
                || !info.bounds.neq.is_empty()
            {
                return false;
            }
        }
        !(info.must_null && info.must_nonnull)
    }

    /// The constant the variable's class is pinned to, if any.
    pub fn eq_const(&mut self, v: Var) -> Option<Konst> {
        let s = self.slot(v);
        let r = self.find(s);
        self.info[r].bounds.eq.clone()
    }

    fn class_info(&mut self, v: Var) -> ClassInfo {
        let s = self.slot(v);
        let r = self.find(s);
        self.info[r].clone()
    }
}

// ---------------------------------------------------------------- analysis

/// The satisfiability summary of a body: its congruence closure, ready for
/// residual-gate extraction.
#[derive(Debug, Clone)]
pub struct BodySummary {
    cong: Congruence,
}

/// Analyze a conjunctive body: build the congruence closure, check interval
/// consistency, and (optionally) apply primary-key subsumption.
///
/// `Err(reason)` means the body is **provably unsatisfiable** — no database
/// state and pending update can make all literals true — and can be dropped
/// without changing any verdict. `Ok(summary)` feeds [`residual_gates`].
pub fn analyze_body(
    body: &[Literal],
    cat: &SchemaCatalog,
    key_subsumption: bool,
) -> Result<BodySummary, PruneReason> {
    let mut cong = Congruence::default();

    // Pass 1: equality congruence (unions first, so later per-class
    // constraints see the merged classes).
    for lit in body {
        if let Literal::Cmp(CmpOp::Eq, Term::Var(a), Term::Var(b)) = lit {
            if !cong.union(*a, *b) {
                return Err(PruneReason::new(
                    "congruence",
                    "equal variables carry contradictory constraints",
                ));
            }
        }
    }

    // Pass 2: constant constraints, NULL requirements, var–var orderings.
    for lit in body {
        match lit {
            Literal::Cmp(op, a, b) => match (a, b) {
                (Term::Const(x), Term::Const(y)) => {
                    if eval_cmp(*op, x, y) == Some(false) {
                        return Err(PruneReason::new(
                            "constant-fold",
                            format!("comparison {x} {op} {y} is false"),
                        ));
                    }
                }
                (Term::Var(v), Term::Const(k)) => {
                    if !cong.constrain(*v, *op, k) {
                        return Err(PruneReason::new(
                            "interval",
                            format!("no value satisfies the combined bounds ({op} {k})"),
                        ));
                    }
                }
                (Term::Const(k), Term::Var(v)) => {
                    if !cong.constrain(*v, op.flip(), k) {
                        return Err(PruneReason::new(
                            "interval",
                            format!("no value satisfies the combined bounds ({} {k})", op.flip()),
                        ));
                    }
                }
                (Term::Var(v), Term::Var(w)) => {
                    if matches!(op, CmpOp::Lt | CmpOp::Gt | CmpOp::NotEq) && cong.same_class(*v, *w)
                    {
                        return Err(PruneReason::new(
                            "congruence",
                            format!("strict comparison {op} between provably equal variables"),
                        ));
                    }
                }
            },
            Literal::IsNull {
                term: Term::Var(v),
                negated,
            } if !cong.require_null(*v, *negated) => {
                return Err(PruneReason::new(
                    "null",
                    "a value is required to be both NULL and non-NULL",
                ));
            }
            Literal::IsNull {
                term: Term::Const(_),
                negated: false,
            } => {
                return Err(PruneReason::new("null", "a constant is never NULL"));
            }
            _ => {}
        }
    }

    // Pass 3: primary-key subsumption. Two *old-state* atoms (base table or
    // `del_T`, whose rows are base rows by `del_T ⊆ T`) over the same
    // relation with congruent key columns denote the same row, so their
    // non-key columns must agree. `ins_T` atoms are excluded: the key
    // constraint is only enforced when the pending insertions are applied,
    // after the check runs.
    if key_subsumption {
        let old_state: Vec<&Atom> = body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if matches!(a.pred, Pred::Base(_) | Pred::Del(_)) => Some(a),
                _ => None,
            })
            .collect();
        for (i, a) in old_state.iter().enumerate() {
            for b in &old_state[i + 1..] {
                let (Some(ta), Some(tb)) = (a.pred.table(), b.pred.table()) else {
                    continue;
                };
                if ta != tb {
                    continue;
                }
                let Some(info) = cat.table(ta) else { continue };
                if info.primary_key.is_empty()
                    || a.args.len() != info.arity()
                    || b.args.len() != info.arity()
                {
                    continue;
                }
                let keys_equal = info
                    .primary_key
                    .iter()
                    .all(|ki| terms_congruent(&mut cong, &a.args[*ki], &b.args[*ki]));
                if !keys_equal {
                    continue;
                }
                // Same row: every non-key column pinned to distinct
                // constants is a contradiction.
                for ci in 0..info.arity() {
                    if info.primary_key.contains(&ci) {
                        continue;
                    }
                    let (Some(ka), Some(kb)) = (
                        resolve_const(&mut cong, &a.args[ci]),
                        resolve_const(&mut cong, &b.args[ci]),
                    ) else {
                        continue;
                    };
                    if !konst_eq(&ka, &kb) {
                        return Err(PruneReason::new(
                            "key-subsumption",
                            format!(
                                "two references to the same {ta} row disagree on column {}",
                                info.columns.get(ci).cloned().unwrap_or_default()
                            ),
                        ));
                    }
                }
            }
        }
    }

    Ok(BodySummary { cong })
}

/// Are two terms provably equal under the congruence?
fn terms_congruent(cong: &mut Congruence, a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => konst_eq(x, y),
        (Term::Var(v), Term::Var(w)) => {
            v == w || cong.same_class(*v, *w) || {
                match (cong.eq_const(*v), cong.eq_const(*w)) {
                    (Some(x), Some(y)) => konst_eq(&x, &y),
                    _ => false,
                }
            }
        }
        (Term::Var(v), Term::Const(k)) | (Term::Const(k), Term::Var(v)) => {
            cong.eq_const(*v).is_some_and(|e| konst_eq(&e, k))
        }
    }
}

/// Resolve a term to a constant (directly or through its class pin).
fn resolve_const(cong: &mut Congruence, t: &Term) -> Option<Konst> {
    match t {
        Term::Const(k) => Some(k.clone()),
        Term::Var(v) => cong.eq_const(*v),
    }
}

/// Extract the residual event gates of a satisfiable body: for each
/// positive `ins_T` / `del_T` atom, the column predicates a witnessing
/// event row must satisfy.
///
/// Soundness: every predicate is a *necessary* condition. A constant
/// argument compiles to `alias.col = k` in the generated view; a variable
/// argument is joined (by equality) to every other occurrence, so any class
/// constraint on the variable must hold at this column for the row to
/// contribute — and SQL's NULL semantics (a NULL operand fails every
/// comparison and every join equality) match the predicate evaluator's.
pub fn residual_gates(body: &[Literal], summary: &BodySummary) -> Vec<ResidualGate> {
    let mut cong = summary.cong.clone();
    let mut out = Vec::new();
    for lit in body {
        let Literal::Pos(atom) = lit else { continue };
        let (is_ins, table) = match &atom.pred {
            Pred::Ins(t) => (true, t.clone()),
            Pred::Del(t) => (false, t.clone()),
            _ => continue,
        };
        let mut preds = Vec::new();
        for (col, arg) in atom.args.iter().enumerate() {
            match arg {
                Term::Const(k) => preds.push(ColPredicate::Cmp {
                    col,
                    op: CmpOp::Eq,
                    value: k.clone(),
                }),
                Term::Var(v) => {
                    let info = cong.class_info(*v);
                    if info.must_null {
                        preds.push(ColPredicate::Null {
                            col,
                            negated: false,
                        });
                        continue;
                    }
                    if let Some(k) = &info.bounds.eq {
                        preds.push(ColPredicate::Cmp {
                            col,
                            op: CmpOp::Eq,
                            value: k.clone(),
                        });
                        continue;
                    }
                    if let Some((lo, strict)) = &info.bounds.lo {
                        preds.push(ColPredicate::Cmp {
                            col,
                            op: if *strict { CmpOp::Gt } else { CmpOp::GtEq },
                            value: lo.clone(),
                        });
                    }
                    if let Some((hi, strict)) = &info.bounds.hi {
                        preds.push(ColPredicate::Cmp {
                            col,
                            op: if *strict { CmpOp::Lt } else { CmpOp::LtEq },
                            value: hi.clone(),
                        });
                    }
                    for n in &info.bounds.neq {
                        preds.push(ColPredicate::Cmp {
                            col,
                            op: CmpOp::NotEq,
                            value: n.clone(),
                        });
                    }
                    if info.must_nonnull && info.bounds.lo.is_none() && info.bounds.hi.is_none() {
                        preds.push(ColPredicate::Null { col, negated: true });
                    }
                }
            }
        }
        out.push(ResidualGate {
            is_ins,
            table,
            preds,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableInfo;

    fn cat() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.add_table(
            "t",
            TableInfo {
                columns: vec!["k".into(), "a".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        c
    }

    fn pos(pred: Pred, args: Vec<Term>) -> Literal {
        Literal::Pos(Atom::new(pred, args))
    }

    fn cmp(op: CmpOp, a: Term, b: Term) -> Literal {
        Literal::Cmp(op, a, b)
    }

    fn int(v: i64) -> Term {
        Term::Const(Konst::Int(v))
    }

    #[test]
    fn interval_contradiction_is_unsat() {
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            cmp(CmpOp::Gt, Term::Var(1), int(5)),
            cmp(CmpOp::Lt, Term::Var(1), int(3)),
        ];
        let r = analyze_body(&body, &cat(), true);
        assert_eq!(r.unwrap_err().rule, "interval");
    }

    #[test]
    fn equality_congruence_propagates_bounds() {
        // x = y, y = 3, x > 5 → unsat through the merged class.
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            cmp(CmpOp::Eq, Term::Var(0), Term::Var(1)),
            cmp(CmpOp::Eq, Term::Var(1), int(3)),
            cmp(CmpOp::Gt, Term::Var(0), int(5)),
        ];
        assert!(analyze_body(&body, &cat(), true).is_err());
        // Without the contradiction the class pins both vars to 3.
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            cmp(CmpOp::Eq, Term::Var(0), Term::Var(1)),
            cmp(CmpOp::Eq, Term::Var(1), int(3)),
        ];
        let summary = analyze_body(&body, &cat(), true).unwrap();
        let mut cong = summary.cong;
        assert_eq!(cong.eq_const(0), Some(Konst::Int(3)));
    }

    #[test]
    fn strict_comparison_between_equal_vars_is_unsat() {
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            cmp(CmpOp::Eq, Term::Var(0), Term::Var(1)),
            cmp(CmpOp::Lt, Term::Var(0), Term::Var(1)),
        ];
        assert_eq!(
            analyze_body(&body, &cat(), true).unwrap_err().rule,
            "congruence"
        );
    }

    #[test]
    fn key_subsumption_detects_same_row_conflict() {
        // t(K, 5) ∧ t(K, 7) with primary key on column 0: same row, two
        // different values for column a.
        let body = vec![
            pos(Pred::Base("t".into()), vec![Term::Var(0), int(5)]),
            pos(Pred::Base("t".into()), vec![Term::Var(0), int(7)]),
        ];
        assert_eq!(
            analyze_body(&body, &cat(), true).unwrap_err().rule,
            "key-subsumption"
        );
        // Disabled → satisfiable.
        assert!(analyze_body(&body, &cat(), false).is_ok());
        // Different keys → satisfiable.
        let body = vec![
            pos(Pred::Base("t".into()), vec![Term::Var(0), int(5)]),
            pos(Pred::Base("t".into()), vec![Term::Var(1), int(7)]),
        ];
        assert!(analyze_body(&body, &cat(), true).is_ok());
    }

    #[test]
    fn key_subsumption_skips_insertion_events() {
        // Two pending ins_t rows may share a key until apply-time
        // enforcement; the analysis must not treat them as one row.
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), int(5)]),
            pos(Pred::Ins("t".into()), vec![Term::Var(0), int(7)]),
        ];
        assert!(analyze_body(&body, &cat(), true).is_ok());
    }

    #[test]
    fn null_and_comparison_conflict() {
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            Literal::IsNull {
                term: Term::Var(1),
                negated: false,
            },
            cmp(CmpOp::Lt, Term::Var(1), int(0)),
        ];
        assert!(analyze_body(&body, &cat(), true).is_err());
    }

    #[test]
    fn residual_gate_from_variable_bounds() {
        // ins_t(k, a) ∧ a < 0: only ins rows with a < 0 qualify.
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            cmp(CmpOp::Lt, Term::Var(1), int(0)),
        ];
        let summary = analyze_body(&body, &cat(), true).unwrap();
        let gates = residual_gates(&body, &summary);
        assert_eq!(gates.len(), 1);
        assert!(gates[0].is_ins);
        assert_eq!(gates[0].table, "t");
        assert_eq!(
            gates[0].preds,
            vec![ColPredicate::Cmp {
                col: 1,
                op: CmpOp::Lt,
                value: Konst::Int(0),
            }]
        );
    }

    #[test]
    fn residual_gate_from_constants_and_congruence() {
        // del_t(7, a) ∧ a = x ∧ x >= 2: both columns constrained.
        let body = vec![
            pos(Pred::Del("t".into()), vec![int(7), Term::Var(1)]),
            cmp(CmpOp::Eq, Term::Var(1), Term::Var(2)),
            cmp(CmpOp::GtEq, Term::Var(2), int(2)),
        ];
        let summary = analyze_body(&body, &cat(), true).unwrap();
        let gates = residual_gates(&body, &summary);
        assert_eq!(gates.len(), 1);
        assert!(!gates[0].is_ins);
        assert_eq!(
            gates[0].preds,
            vec![
                ColPredicate::Cmp {
                    col: 0,
                    op: CmpOp::Eq,
                    value: Konst::Int(7),
                },
                ColPredicate::Cmp {
                    col: 1,
                    op: CmpOp::GtEq,
                    value: Konst::Int(2),
                },
            ]
        );
    }

    #[test]
    fn unconstrained_event_atom_has_open_gate() {
        let body = vec![pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)])];
        let summary = analyze_body(&body, &cat(), true).unwrap();
        let gates = residual_gates(&body, &summary);
        assert_eq!(gates.len(), 1);
        assert!(gates[0].preds.is_empty());
    }

    #[test]
    fn null_requirement_becomes_gate_predicate() {
        let body = vec![
            pos(Pred::Ins("t".into()), vec![Term::Var(0), Term::Var(1)]),
            Literal::IsNull {
                term: Term::Var(1),
                negated: false,
            },
        ];
        let summary = analyze_body(&body, &cat(), true).unwrap();
        let gates = residual_gates(&body, &summary);
        assert_eq!(
            gates[0].preds,
            vec![ColPredicate::Null {
                col: 1,
                negated: false,
            }]
        );
    }
}
