//! Event Dependency Constraint generation (paper §2, step 2).
//!
//! Each literal of a denial is rewritten to its new-state equivalent using
//! the paper's formulas (2) and (3):
//!
//! ```text
//! pⁿ(x̄)  ⟺  ι_p(x̄) ∨ (p(x̄) ∧ ¬δ_p(x̄))            (2)
//! ¬pⁿ(x̄) ⟺  δ_p(x̄) ∨ (¬ι_p(x̄) ∧ ¬p(x̄))           (3)
//! ```
//!
//! Distributing the disjunctions over the denial body yields one conjunctive
//! rule per combination; every combination choosing at least one *event*
//! branch is an EDC (the all-unchanged combination is the old-state denial,
//! assumed satisfied, and is discarded). Derived predicates get recursively
//! generated insertion (`ι_d`), deletion (`δ_d`) and new-state (`dⁿ`)
//! definitions grounded in Olivé's event rules \[3\].
//!
//! The generator assumes *normalized* events: `ins_T ∩ T = ∅`,
//! `del_T ⊆ T`, `ins_T ∩ del_T = ∅` — exactly what
//! `Database::normalize_events` establishes.

use crate::analysis::{analyze_body, residual_gates, ResidualGate};
use crate::catalog::SchemaCatalog;
use crate::ir::*;
use crate::optimize::{optimize_bodies, OptimizerConfig, PrunedBody};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Upper bound on EDC bodies per denial (expansion guard).
pub const MAX_EDC_BODIES: usize = 1024;

/// Error from EDC generation.
#[derive(Debug, Clone, PartialEq)]
pub struct EdcError {
    pub message: String,
}

impl fmt::Display for EdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EDC generation: {}", self.message)
    }
}

impl std::error::Error for EdcError {}

/// One Event Dependency Constraint: a conjunctive rule whose non-empty
/// answer means the pending update violates the source assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Edc {
    pub assertion: String,
    pub denial_index: usize,
    /// Ordinal among the denial's EDCs.
    pub index: usize,
    pub body: Vec<Literal>,
    /// Positive event atoms of the body: `(is_insertion, table)`. The EDC
    /// can only produce rows when **all** of these event tables are
    /// non-empty — the emptiness shortcut of `safeCommit`.
    pub gate: Vec<(bool, String)>,
    /// Predicate-granular refinement of `gate` from the install-time
    /// analysis: the EDC can only produce rows when **each** of these
    /// residual gates has at least one qualifying event row. Empty when the
    /// analysis is off.
    pub residual: Vec<ResidualGate>,
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy)]
pub struct EdcConfig {
    /// Apply the semantic optimizations (disjoint events, set semantics,
    /// built-in folding, duplicate elimination).
    pub optimize: bool,
    /// Apply foreign-key pruning (the paper's EDC 5 example); requires FKs
    /// to hold in the old state.
    pub assume_fks_valid: bool,
    /// Run the install-time constraint analysis (equality congruence, key
    /// subsumption, residual event gates). Off = the pre-analysis pipeline,
    /// used as the reference build of the sim differential regime.
    pub analysis: bool,
    /// Enable the deliberately unsound `over-prune` rule (sim-oracle mutant
    /// only — never in production).
    pub over_prune: bool,
}

impl Default for EdcConfig {
    fn default() -> Self {
        EdcConfig {
            optimize: true,
            assume_fks_valid: true,
            analysis: true,
            over_prune: false,
        }
    }
}

/// EDC generator; owns the derived-predicate event transformations.
pub struct EdcGenerator<'a> {
    pub reg: &'a mut Registry,
    pub cat: &'a SchemaCatalog,
    pub config: EdcConfig,
    /// Bodies the optimizer proved unsatisfiable across all `generate`
    /// calls, with reasons — drained by the installer for the linter.
    pub pruned: Vec<PrunedBody>,
    /// Memo for base-table new-state predicates `new_T`.
    base_new: BTreeMap<String, DerivedId>,
}

type EResult<T> = Result<T, EdcError>;

impl<'a> EdcGenerator<'a> {
    pub fn new(reg: &'a mut Registry, cat: &'a SchemaCatalog, config: EdcConfig) -> Self {
        EdcGenerator {
            reg,
            cat,
            config,
            pruned: Vec::new(),
            base_new: BTreeMap::new(),
        }
    }

    /// Generate the EDCs of a denial.
    pub fn generate(&mut self, denial: &Denial) -> EResult<Vec<Edc>> {
        let bound = positively_bound_vars(&denial.body);
        // Expansion choices per literal: (event_branch, unchanged_branch),
        // or a fixed literal for built-ins.
        let mut choices: Vec<LitChoices> = Vec::new();
        for lit in &denial.body {
            choices.push(self.literal_choices(lit, &bound)?);
        }
        // Distribute: all combinations with ≥ 1 event branch.
        let mut bodies: Vec<(Vec<Literal>, bool)> = vec![(Vec::new(), false)];
        for ch in &choices {
            let mut next = Vec::new();
            for (body, has_event) in &bodies {
                match ch {
                    LitChoices::Fixed(l) => {
                        let mut b = body.clone();
                        b.push(l.clone());
                        next.push((b, *has_event));
                    }
                    LitChoices::State { event, unchanged } => {
                        let mut be = body.clone();
                        be.extend(event.iter().cloned());
                        next.push((be, true));
                        let mut bu = body.clone();
                        bu.extend(unchanged.iter().cloned());
                        next.push((bu, *has_event));
                    }
                }
                if next.len() > MAX_EDC_BODIES {
                    return Err(EdcError {
                        message: format!("denial expands into more than {MAX_EDC_BODIES} EDCs"),
                    });
                }
            }
            bodies = next;
        }
        let mut raw: Vec<Vec<Literal>> = bodies
            .into_iter()
            .filter(|(_, has_event)| *has_event)
            .map(|(b, _)| b)
            .collect();

        // Inline positive derived atoms (δ_d / ι_d introduced above) so the
        // final bodies range over base tables and events only.
        let mut inlined = Vec::new();
        for body in raw.drain(..) {
            inlined.extend(self.inline_positive_derived(body, 0)?);
            if inlined.len() > MAX_EDC_BODIES {
                return Err(EdcError {
                    message: format!("denial expands into more than {MAX_EDC_BODIES} EDCs"),
                });
            }
        }

        // Optimize: run the rule pipeline, keeping prune provenance.
        let base = if self.config.analysis {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::analysis_off()
        };
        let opt_cfg = OptimizerConfig {
            enabled: self.config.optimize,
            assume_fks_valid: self.config.assume_fks_valid,
            over_prune: self.config.over_prune,
            ..base
        };
        let mut outcome = optimize_bodies(inlined, self.cat, &opt_cfg);
        self.pruned.append(&mut outcome.pruned);

        Ok(outcome
            .kept
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let gate = gate_of(&body);
                // Residual gates: refine the emptiness gate to predicate
                // granularity. Only meaningful when the analysis proved the
                // body satisfiable (it just did, or it would be in
                // `pruned`); the atoms' column constraints come from the
                // same congruence closure.
                let residual = if opt_cfg.enabled && opt_cfg.residual_gates {
                    analyze_body(&body, self.cat, opt_cfg.key_subsumption)
                        .map(|summary| residual_gates(&body, &summary))
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                Edc {
                    assertion: denial.assertion.clone(),
                    denial_index: denial.index,
                    index: i,
                    body: order_for_sql(body),
                    gate,
                    residual,
                }
            })
            .collect())
    }

    /// Expansion choices of one denial literal.
    fn literal_choices(&mut self, lit: &Literal, bound: &[Var]) -> EResult<LitChoices> {
        Ok(match lit {
            Literal::Cmp(..) | Literal::IsNull { .. } => LitChoices::Fixed(lit.clone()),
            Literal::Pos(atom) => match &atom.pred {
                Pred::Base(t) => LitChoices::State {
                    event: vec![Literal::Pos(Atom::new(
                        Pred::Ins(t.clone()),
                        atom.args.clone(),
                    ))],
                    unchanged: vec![
                        Literal::Pos(atom.clone()),
                        Literal::Neg(Atom::new(Pred::Del(t.clone()), atom.args.clone())),
                    ],
                },
                Pred::Derived(id) => {
                    let ins_d = self.event_def(EventKind::Ins, *id)?;
                    let del_d = self.event_def(EventKind::Del, *id)?;
                    LitChoices::State {
                        event: vec![Literal::Pos(Atom::new(
                            Pred::Derived(ins_d),
                            atom.args.clone(),
                        ))],
                        unchanged: vec![
                            Literal::Pos(atom.clone()),
                            Literal::Neg(Atom::new(Pred::Derived(del_d), atom.args.clone())),
                        ],
                    }
                }
                Pred::Ins(_) | Pred::Del(_) => {
                    return Err(EdcError {
                        message: "event atoms cannot appear in source denials".into(),
                    })
                }
            },
            Literal::Neg(atom) => match &atom.pred {
                Pred::Base(t) => {
                    let locals: Vec<Var> = atom
                        .vars()
                        .into_iter()
                        .filter(|v| !bound.contains(v))
                        .collect();
                    let event = if locals.is_empty() {
                        // Fully bound: ¬newT(args) simplifies to ¬ι_T(args)
                        // given δ_T(args) and event normalization.
                        vec![
                            Literal::Pos(Atom::new(Pred::Del(t.clone()), atom.args.clone())),
                            Literal::Neg(Atom::new(Pred::Ins(t.clone()), atom.args.clone())),
                        ]
                    } else {
                        // The paper's aux predicate: after deleting a
                        // matching tuple, no tuple may match in the new
                        // state (fresh local variables).
                        let new_t = self.base_new_def(t);
                        let fresh_args: Vec<Term> = atom
                            .args
                            .iter()
                            .map(|a| match a {
                                Term::Var(v) if locals.contains(v) => {
                                    let name = format!("{}_n", self.reg.var_name(*v));
                                    Term::Var(self.reg.fresh_var(&name))
                                }
                                other => other.clone(),
                            })
                            .collect();
                        vec![
                            Literal::Pos(Atom::new(Pred::Del(t.clone()), atom.args.clone())),
                            Literal::Neg(Atom::new(Pred::Derived(new_t), fresh_args)),
                        ]
                    };
                    LitChoices::State {
                        event,
                        unchanged: vec![
                            Literal::Neg(atom.clone()),
                            Literal::Neg(Atom::new(Pred::Ins(t.clone()), atom.args.clone())),
                        ],
                    }
                }
                Pred::Derived(id) => {
                    let ins_d = self.event_def(EventKind::Ins, *id)?;
                    let del_d = self.event_def(EventKind::Del, *id)?;
                    let new_d = self.event_def(EventKind::New, *id)?;
                    LitChoices::State {
                        event: vec![
                            Literal::Pos(Atom::new(Pred::Derived(del_d), atom.args.clone())),
                            Literal::Neg(Atom::new(Pred::Derived(new_d), atom.args.clone())),
                        ],
                        unchanged: vec![
                            Literal::Neg(atom.clone()),
                            Literal::Neg(Atom::new(Pred::Derived(ins_d), atom.args.clone())),
                        ],
                    }
                }
                Pred::Ins(_) | Pred::Del(_) => {
                    return Err(EdcError {
                        message: "event atoms cannot appear in source denials".into(),
                    })
                }
            },
        })
    }

    /// The `new_T` derived predicate for a base table:
    /// `new_T(x̄) ← ι_T(x̄)` and `new_T(x̄) ← T(x̄) ∧ ¬δ_T(x̄)`.
    fn base_new_def(&mut self, table: &str) -> DerivedId {
        if let Some(id) = self.base_new.get(table) {
            return *id;
        }
        let arity = self.cat.table(table).map(|t| t.arity()).unwrap_or_default();
        let vars: Vec<Var> = (0..arity)
            .map(|i| self.reg.fresh_var(&format!("{table}_c{i}")))
            .collect();
        let head: Vec<Term> = vars.iter().map(|v| Term::Var(*v)).collect();
        let def = DerivedDef {
            name: format!("new_{table}"),
            arity,
            rules: vec![
                Rule {
                    head: head.clone(),
                    body: vec![Literal::Pos(Atom::new(
                        Pred::Ins(table.to_string()),
                        head.clone(),
                    ))],
                },
                Rule {
                    head: head.clone(),
                    body: vec![
                        Literal::Pos(Atom::new(Pred::Base(table.to_string()), head.clone())),
                        Literal::Neg(Atom::new(Pred::Del(table.to_string()), head)),
                    ],
                },
            ],
        };
        let id = self.reg.add_derived(def);
        self.base_new.insert(table.to_string(), id);
        id
    }

    /// Event transformation of a derived predicate (memoized).
    fn event_def(&mut self, kind: EventKind, id: DerivedId) -> EResult<DerivedId> {
        if let Some(memo) = self.reg.event_memo_get(kind, id) {
            return Ok(memo);
        }
        let def = self.reg.derived(id).clone();
        let new_def = match kind {
            EventKind::New => self.make_new_def(&def)?,
            EventKind::Ins => self.make_ins_def(id, &def)?,
            EventKind::Del => self.make_del_def(id, &def)?,
        };
        let new_id = self.reg.add_derived(new_def);
        self.reg.event_memo_put(kind, id, new_id);
        Ok(new_id)
    }

    /// `dⁿ`: the rules of `d` with every state literal replaced by its
    /// new-state version.
    fn make_new_def(&mut self, def: &DerivedDef) -> EResult<DerivedDef> {
        let mut rules = Vec::new();
        for rule in &def.rules {
            let mut body = Vec::with_capacity(rule.body.len());
            for lit in &rule.body {
                body.push(self.to_new_state(lit)?);
            }
            // Inline the positive new_T atoms introduced (splitting rules).
            for expanded in self.inline_positive_derived(body, 0)? {
                rules.push(Rule {
                    head: rule.head.clone(),
                    body: expanded,
                });
            }
        }
        Ok(DerivedDef {
            name: format!("new_{}", def.name),
            arity: def.arity,
            rules,
        })
    }

    #[allow(clippy::wrong_self_convention)] // "to the new state", not a conversion of self
    fn to_new_state(&mut self, lit: &Literal) -> EResult<Literal> {
        Ok(match lit {
            Literal::Cmp(..) | Literal::IsNull { .. } => lit.clone(),
            Literal::Pos(a) => match &a.pred {
                Pred::Base(t) => {
                    let new_t = self.base_new_def(t);
                    Literal::Pos(Atom::new(Pred::Derived(new_t), a.args.clone()))
                }
                Pred::Derived(e) => {
                    let new_e = self.event_def(EventKind::New, *e)?;
                    Literal::Pos(Atom::new(Pred::Derived(new_e), a.args.clone()))
                }
                _ => {
                    return Err(EdcError {
                        message: "event atom in derived rule".into(),
                    })
                }
            },
            Literal::Neg(a) => match &a.pred {
                Pred::Base(t) => {
                    let new_t = self.base_new_def(t);
                    Literal::Neg(Atom::new(Pred::Derived(new_t), a.args.clone()))
                }
                Pred::Derived(e) => {
                    let new_e = self.event_def(EventKind::New, *e)?;
                    Literal::Neg(Atom::new(Pred::Derived(new_e), a.args.clone()))
                }
                _ => {
                    return Err(EdcError {
                        message: "event atom in derived rule".into(),
                    })
                }
            },
        })
    }

    /// `ι_d`: for each rule, every ≥1-event expansion of the body, plus the
    /// closure condition `¬d(head)` (it was false in the old state).
    fn make_ins_def(&mut self, id: DerivedId, def: &DerivedDef) -> EResult<DerivedDef> {
        let mut rules = Vec::new();
        for rule in &def.rules {
            let bound = positively_bound_vars(&rule.body);
            let head_vars: Vec<Var> = rule.head.iter().filter_map(|t| t.as_var()).collect();
            let mut all_bound = bound;
            for v in head_vars {
                if !all_bound.contains(&v) {
                    all_bound.push(v);
                }
            }
            let mut choices = Vec::new();
            for lit in &rule.body {
                choices.push(self.literal_choices(lit, &all_bound)?);
            }
            for body in distribute(&choices, MAX_EDC_BODIES)? {
                let mut body = body;
                body.push(Literal::Neg(Atom::new(
                    Pred::Derived(id),
                    rule.head.clone(),
                )));
                for expanded in self.inline_positive_derived(body, 0)? {
                    rules.push(Rule {
                        head: rule.head.clone(),
                        body: expanded,
                    });
                }
            }
        }
        Ok(DerivedDef {
            name: format!("ins_{}", def.name),
            arity: def.arity,
            rules,
        })
    }

    /// `δ_d`: for each rule, choose ≥1 literal to falsify (deletion of a
    /// positive / insertion matching a negative), keep the rest in the old
    /// state, and require `¬dⁿ(head)` (false in the new state).
    fn make_del_def(&mut self, id: DerivedId, def: &DerivedDef) -> EResult<DerivedDef> {
        let new_d = self.event_def(EventKind::New, id)?;
        let mut rules = Vec::new();
        for rule in &def.rules {
            let mut choices: Vec<LitChoices> = Vec::new();
            for lit in &rule.body {
                choices.push(match lit {
                    Literal::Cmp(..) | Literal::IsNull { .. } => LitChoices::Fixed(lit.clone()),
                    Literal::Pos(a) => match &a.pred {
                        Pred::Base(t) => LitChoices::State {
                            event: vec![Literal::Pos(Atom::new(
                                Pred::Del(t.clone()),
                                a.args.clone(),
                            ))],
                            unchanged: vec![lit.clone()],
                        },
                        Pred::Derived(e) => {
                            let del_e = self.event_def(EventKind::Del, *e)?;
                            LitChoices::State {
                                event: vec![Literal::Pos(Atom::new(
                                    Pred::Derived(del_e),
                                    a.args.clone(),
                                ))],
                                unchanged: vec![lit.clone()],
                            }
                        }
                        _ => {
                            return Err(EdcError {
                                message: "event atom in derived rule".into(),
                            })
                        }
                    },
                    Literal::Neg(a) => match &a.pred {
                        Pred::Base(t) => LitChoices::State {
                            event: vec![Literal::Pos(Atom::new(
                                Pred::Ins(t.clone()),
                                a.args.clone(),
                            ))],
                            unchanged: vec![lit.clone()],
                        },
                        Pred::Derived(e) => {
                            let ins_e = self.event_def(EventKind::Ins, *e)?;
                            LitChoices::State {
                                event: vec![Literal::Pos(Atom::new(
                                    Pred::Derived(ins_e),
                                    a.args.clone(),
                                ))],
                                unchanged: vec![lit.clone()],
                            }
                        }
                        _ => {
                            return Err(EdcError {
                                message: "event atom in derived rule".into(),
                            })
                        }
                    },
                });
            }
            for body in distribute(&choices, MAX_EDC_BODIES)? {
                let mut body = body;
                body.push(Literal::Neg(Atom::new(
                    Pred::Derived(new_d),
                    rule.head.clone(),
                )));
                for expanded in self.inline_positive_derived(body, 0)? {
                    rules.push(Rule {
                        head: rule.head.clone(),
                        body: expanded,
                    });
                }
            }
        }
        Ok(DerivedDef {
            name: format!("del_{}", def.name),
            arity: def.arity,
            rules,
        })
    }

    /// Replace positive derived atoms by their rule bodies (unifying head
    /// terms with the atom's arguments), recursively. Negated derived atoms
    /// are kept — they compile to NOT EXISTS over the derived definition.
    fn inline_positive_derived(
        &mut self,
        body: Vec<Literal>,
        depth: usize,
    ) -> EResult<Vec<Vec<Literal>>> {
        if depth > 16 {
            return Err(EdcError {
                message: "derived predicate inlining exceeded depth 16".into(),
            });
        }
        let pos_derived = body
            .iter()
            .position(|l| matches!(l, Literal::Pos(a) if matches!(a.pred, Pred::Derived(_))));
        let Some(idx) = pos_derived else {
            return Ok(vec![body]);
        };
        let Literal::Pos(atom) = body[idx].clone() else {
            unreachable!()
        };
        let Pred::Derived(id) = atom.pred else {
            unreachable!()
        };
        let def = self.reg.derived(id).clone();
        let mut out = Vec::new();
        for rule in &def.rules {
            // Rename all rule variables fresh.
            let mut rename: BTreeMap<Var, Term> = BTreeMap::new();
            let mut rule_vars = Vec::new();
            for t in rule.head.iter() {
                if let Term::Var(v) = t {
                    if !rule_vars.contains(v) {
                        rule_vars.push(*v);
                    }
                }
            }
            for l in &rule.body {
                for v in l.vars() {
                    if !rule_vars.contains(&v) {
                        rule_vars.push(v);
                    }
                }
            }
            for v in rule_vars {
                let name = self.reg.var_name(v).to_string();
                let fresh = self.reg.fresh_var(&name);
                rename.insert(v, Term::Var(fresh));
            }
            let head: Vec<Term> = rule.head.iter().map(|t| subst_term(t, &rename)).collect();
            let rbody = subst_body(&rule.body, &rename);
            // Unify head with atom args.
            let mut binds = Bindings::default();
            let mut ok = true;
            for (h, a) in head.iter().zip(&atom.args) {
                if !binds.unify(h, a) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let mut merged: Vec<Literal> = body[..idx].to_vec();
            merged.extend(rbody);
            merged.extend(body[idx + 1..].to_vec());
            let merged = binds.apply(&merged);
            out.extend(self.inline_positive_derived(merged, depth + 1)?);
            if out.len() > MAX_EDC_BODIES {
                return Err(EdcError {
                    message: format!(
                        "positive derived inlining expanded past {MAX_EDC_BODIES} bodies"
                    ),
                });
            }
        }
        Ok(out)
    }
}

/// Per-literal expansion choices.
enum LitChoices {
    Fixed(Literal),
    State {
        event: Vec<Literal>,
        unchanged: Vec<Literal>,
    },
}

/// All ≥1-event combinations of the choices.
fn distribute(choices: &[LitChoices], max: usize) -> EResult<Vec<Vec<Literal>>> {
    let mut bodies: Vec<(Vec<Literal>, bool)> = vec![(Vec::new(), false)];
    for ch in choices {
        let mut next = Vec::new();
        for (body, has_event) in &bodies {
            match ch {
                LitChoices::Fixed(l) => {
                    let mut b = body.clone();
                    b.push(l.clone());
                    next.push((b, *has_event));
                }
                LitChoices::State { event, unchanged } => {
                    let mut be = body.clone();
                    be.extend(event.iter().cloned());
                    next.push((be, true));
                    let mut bu = body.clone();
                    bu.extend(unchanged.iter().cloned());
                    next.push((bu, *has_event));
                }
            }
        }
        if next.len() > max {
            return Err(EdcError {
                message: format!("expansion exceeded {max} bodies"),
            });
        }
        bodies = next;
    }
    Ok(bodies
        .into_iter()
        .filter(|(_, e)| *e)
        .map(|(b, _)| b)
        .collect())
}

/// The gating events of a final EDC body: all positive `ins`/`del` atoms.
fn gate_of(body: &[Literal]) -> Vec<(bool, String)> {
    let mut out = Vec::new();
    for lit in body {
        if let Literal::Pos(a) = lit {
            match &a.pred {
                Pred::Ins(t) if !out.contains(&(true, t.clone())) => {
                    out.push((true, t.clone()));
                }
                Pred::Del(t) if !out.contains(&(false, t.clone())) => {
                    out.push((false, t.clone()));
                }
                _ => {}
            }
        }
    }
    out
}

/// Order literals for SQL generation: positive event atoms first (most
/// selective FROM sources), then positive base atoms, then the rest.
fn order_for_sql(body: Vec<Literal>) -> Vec<Literal> {
    let mut events = Vec::new();
    let mut bases = Vec::new();
    let mut rest = Vec::new();
    for l in body {
        match &l {
            Literal::Pos(a) if a.pred.is_event() => events.push(l),
            Literal::Pos(_) => bases.push(l),
            _ => rest.push(l),
        }
    }
    events.extend(bases);
    events.extend(rest);
    events
}

/// Collect every derived predicate transitively referenced (negatively) by
/// a set of EDC bodies — the definitions the SQL generator must emit.
pub fn referenced_derived(bodies: &[&[Literal]], reg: &Registry) -> BTreeSet<DerivedId> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<DerivedId> = Vec::new();
    let visit_body = |body: &[Literal], stack: &mut Vec<DerivedId>| {
        for l in body {
            let atom = match l {
                Literal::Pos(a) | Literal::Neg(a) => a,
                _ => continue,
            };
            if let Pred::Derived(id) = &atom.pred {
                stack.push(*id);
            }
        }
    };
    for body in bodies {
        visit_body(body, &mut stack);
    }
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        for rule in &reg.derived(id).rules {
            visit_body(&rule.body, &mut stack);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FkInfo, TableInfo};
    use crate::translate::translate_assertion;
    use tintin_sql as sql;

    fn tpch_cat() -> SchemaCatalog {
        let mut cat = SchemaCatalog::new();
        cat.add_table(
            "orders",
            TableInfo {
                columns: vec!["o_orderkey".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        cat.add_table(
            "lineitem",
            TableInfo {
                columns: vec!["l_orderkey".into(), "l_linenumber".into()],
                primary_key: vec![0, 1],
                foreign_keys: vec![FkInfo {
                    columns: vec![0],
                    ref_table: "orders".into(),
                    ref_columns: vec![0],
                }],
            },
        );
        cat
    }

    fn edcs_for(assertion_sql: &str, config: EdcConfig) -> (Vec<Edc>, Registry) {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        let sql::Statement::CreateAssertion(a) =
            tintin_sql::parse_statement(assertion_sql).unwrap()
        else {
            panic!()
        };
        let denials = translate_assertion(&cat, &mut reg, &a).unwrap();
        let mut all = Vec::new();
        for d in &denials {
            let mut generator = EdcGenerator::new(&mut reg, &cat, config);
            all.extend(generator.generate(d).unwrap());
        }
        (all, reg)
    }

    const RUNNING_EXAMPLE: &str = "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
        SELECT * FROM orders o WHERE NOT EXISTS (
            SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))";

    #[test]
    fn running_example_unoptimized_has_three_edcs() {
        // Paper: EDCs 4, 5, 6 before the FK optimization.
        let (edcs, _) = edcs_for(
            RUNNING_EXAMPLE,
            EdcConfig {
                optimize: false,
                assume_fks_valid: false,
                ..EdcConfig::default()
            },
        );
        assert_eq!(edcs.len(), 3);
    }

    #[test]
    fn running_example_fk_optimization_discards_edc5() {
        // Paper: "EDC 5 can be safely discarded assuming that the foreign
        // key constraint from lineitem to order is satisfied".
        let (edcs, reg) = edcs_for(RUNNING_EXAMPLE, EdcConfig::default());
        assert_eq!(
            edcs.len(),
            2,
            "got: {:#?}",
            edcs.iter()
                .map(|e| reg.body_str(&e.body))
                .collect::<Vec<_>>()
        );
        // EDC 4: gated on ins_orders; EDC 6: gated on del_lineitem.
        let gates: Vec<Vec<(bool, String)>> = edcs.iter().map(|e| e.gate.clone()).collect();
        assert!(gates.contains(&vec![(true, "orders".into())]));
        assert!(gates.contains(&vec![(false, "lineitem".into())]));
    }

    #[test]
    fn edc4_shape_matches_paper() {
        let (edcs, reg) = edcs_for(RUNNING_EXAMPLE, EdcConfig::default());
        let edc4 = edcs
            .iter()
            .find(|e| e.gate == vec![(true, "orders".into())])
            .unwrap();
        // ι_orders(o) ∧ ¬lineitem(l, o) ∧ ¬ι_lineitem(l, o)
        let s = reg.body_str(&edc4.body);
        assert!(s.contains("ins_orders"), "{s}");
        assert!(s.contains("not lineitem"), "{s}");
        assert!(s.contains("not ins_lineitem"), "{s}");
        assert_eq!(edc4.body.len(), 3, "{s}");
    }

    #[test]
    fn edc6_uses_new_state_aux() {
        let (edcs, reg) = edcs_for(RUNNING_EXAMPLE, EdcConfig::default());
        let edc6 = edcs
            .iter()
            .find(|e| e.gate == vec![(false, "lineitem".into())])
            .unwrap();
        let s = reg.body_str(&edc6.body);
        // orders(o) ∧ ¬δ_orders(o) ∧ δ_lineitem(l,o) ∧ ¬new_lineitem(l',o)
        assert!(s.contains("del_lineitem"), "{s}");
        assert!(s.contains("not del_orders"), "{s}");
        assert!(s.contains("not new_lineitem"), "{s}");
    }

    #[test]
    fn simple_fk_assertion_edcs() {
        // Every lineitem references an existing order (no locals in the
        // negated atom — fully bound).
        let (edcs, reg) = edcs_for(
            "CREATE ASSERTION fk CHECK (NOT EXISTS (
                SELECT * FROM lineitem l WHERE NOT EXISTS (
                    SELECT * FROM orders o WHERE o.o_orderkey = l.l_orderkey)))",
            EdcConfig::default(),
        );
        // EDC A: ι_lineitem(l,o) ∧ ¬orders(o) ∧ ¬ι_orders(o)
        // EDC B: lineitem ∧ ¬δ_lineitem ∧ δ_orders(o) ∧ ¬ι_orders(o)
        // EDC C: ι_lineitem ∧ δ_orders ∧ ¬ι_orders — pruned? Not by FK rule
        //        (no insertion into the parent here); kept.
        let strs: Vec<String> = edcs.iter().map(|e| reg.body_str(&e.body)).collect();
        assert!(edcs.len() >= 2, "{strs:?}");
        assert!(strs
            .iter()
            .any(|s| s.contains("ins_lineitem") && s.contains("not orders")));
        assert!(strs.iter().any(|s| s.contains("del_orders")));
    }

    #[test]
    fn selection_assertion_has_single_insertion_edc() {
        // NOT EXISTS (SELECT * FROM lineitem WHERE l_linenumber < 0):
        // only an insertion can violate it.
        let (edcs, reg) = edcs_for(
            "CREATE ASSERTION pos CHECK (NOT EXISTS (
                SELECT * FROM lineitem WHERE l_linenumber < 0))",
            EdcConfig::default(),
        );
        assert_eq!(
            edcs.len(),
            1,
            "{:?}",
            edcs.iter()
                .map(|e| reg.body_str(&e.body))
                .collect::<Vec<_>>()
        );
        assert_eq!(edcs[0].gate, vec![(true, "lineitem".into())]);
    }

    #[test]
    fn every_edc_has_at_least_one_event_gate() {
        for (sql_text, _) in [
            (RUNNING_EXAMPLE, 0),
            (
                "CREATE ASSERTION x CHECK (NOT EXISTS (
                    SELECT * FROM orders o, lineitem l
                    WHERE o.o_orderkey = l.l_orderkey AND l.l_linenumber > 7))",
                0,
            ),
        ] {
            let (edcs, _) = edcs_for(sql_text, EdcConfig::default());
            for e in &edcs {
                assert!(!e.gate.is_empty(), "EDC without event gate");
            }
        }
    }

    #[test]
    fn join_assertion_generates_expected_count() {
        // Two positive literals → 2² − 1 = 3 EDCs before optimization.
        let (edcs, _) = edcs_for(
            "CREATE ASSERTION x CHECK (NOT EXISTS (
                SELECT * FROM orders o, lineitem l
                WHERE o.o_orderkey = l.l_orderkey AND l.l_linenumber > 7))",
            EdcConfig {
                optimize: false,
                assume_fks_valid: false,
                ..EdcConfig::default()
            },
        );
        assert_eq!(edcs.len(), 3);
    }

    #[test]
    fn derived_negation_generates_event_defs() {
        // Inner subquery with an extra comparison → derived predicate; its
        // EDCs need ι/δ/new transformations.
        let (edcs, reg) = edcs_for(
            "CREATE ASSERTION q CHECK (NOT EXISTS (
                SELECT * FROM orders o WHERE NOT EXISTS (
                    SELECT * FROM lineitem l
                    WHERE l.l_orderkey = o.o_orderkey AND l.l_linenumber > 0)))",
            EdcConfig::default(),
        );
        assert!(!edcs.is_empty());
        // Registry should now contain aux, ι_aux / δ_aux / new_aux defs.
        assert!(reg.num_derived() >= 4);
        // All EDC bodies must be free of *positive* derived atoms.
        for e in &edcs {
            for l in &e.body {
                if let Literal::Pos(a) = l {
                    assert!(
                        !matches!(a.pred, Pred::Derived(_)),
                        "positive derived atom survived inlining: {}",
                        reg.body_str(&e.body)
                    );
                }
            }
        }
    }

    #[test]
    fn referenced_derived_is_transitive() {
        let (edcs, reg) = edcs_for(RUNNING_EXAMPLE, EdcConfig::default());
        let bodies: Vec<&[Literal]> = edcs.iter().map(|e| e.body.as_slice()).collect();
        let refs = referenced_derived(&bodies, &reg);
        // new_lineitem is referenced by EDC 6.
        assert!(refs
            .iter()
            .any(|id| reg.derived(*id).name == "new_lineitem"));
    }

    #[test]
    fn events_ordered_first_for_sql() {
        let (edcs, _) = edcs_for(RUNNING_EXAMPLE, EdcConfig::default());
        for e in &edcs {
            let first_pos = e
                .body
                .iter()
                .find(|l| l.is_positive_atom())
                .expect("EDC has positive atoms");
            if let Literal::Pos(a) = first_pos {
                assert!(
                    a.pred.is_event(),
                    "first positive atom should be an event table"
                );
            }
        }
    }
}
