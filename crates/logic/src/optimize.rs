//! Semantic optimization of EDC bodies (paper §2: "TINTIN incorporates some
//! semantic optimizations … which allow performing integrity checking more
//! efficiently").
//!
//! All rewrites rely on the normalized-event invariants established by
//! `Database::normalize_events`:
//!
//! * `ins_T ∩ T = ∅` (set semantics: no insertion of an existing row),
//! * `del_T ⊆ T` (only existing rows are deleted),
//! * `ins_T ∩ del_T = ∅` (cancellation).
//!
//! Every rewrite is one named rule of a single [`OptimizerConfig`]-driven
//! pipeline with per-rule enable flags — the analysis-off differential
//! build of the sim harness ([`OptimizerConfig::analysis_off`]) and the
//! ablation benchmarks toggle individual rules. Rules: literal
//! deduplication, event contradiction pruning, redundant-negation
//! elimination, built-in constant folding with per-variable bounds,
//! foreign-key pruning (the paper's EDC 5), the install-time satisfiability
//! analysis of [`crate::analysis`] (equality congruence + key subsumption),
//! canonical duplicate elimination — and, guarded behind `over_prune`, a
//! deliberately unsound rule used only as a sim-oracle known-bad mutant.

use crate::analysis::{analyze_body, eval_cmp, PruneReason, VarBounds};
use crate::catalog::SchemaCatalog;
use crate::ir::*;
use std::collections::{BTreeMap, BTreeSet};

/// Optimizer switches: one flag per pipeline rule (split out for the
/// ablation benchmarks and the analysis-off differential build).
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Master switch; when false bodies pass through untouched.
    pub enabled: bool,
    /// Deduplicate identical literals and canonically-equal bodies.
    pub dedup: bool,
    /// Prune event contradictions (ι∧δ, ι∧T, δ∧¬T, Pos∧Neg).
    pub event_contradictions: bool,
    /// Drop negations implied by the normalized-event invariants.
    pub redundant_negations: bool,
    /// Fold constant comparisons and track per-variable bounds.
    pub fold_builtins: bool,
    /// Apply FK pruning (assumes foreign keys hold in the old state).
    pub assume_fks_valid: bool,
    /// Equality congruence closure (analysis pass).
    pub congruence: bool,
    /// Primary-key subsumption over old-state atoms (analysis pass).
    pub key_subsumption: bool,
    /// Emit residual event gates for satisfiable bodies (consumed by the
    /// EDC generator; no effect on body rewriting itself).
    pub residual_gates: bool,
    /// DELIBERATELY UNSOUND: prune every body carrying a strict
    /// variable–constant comparison. Exists only as the sim harness's
    /// `over-prune` known-bad mutant — the differential oracle must catch
    /// the verdict divergence this causes. Never enable in production.
    pub over_prune: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enabled: true,
            dedup: true,
            event_contradictions: true,
            redundant_negations: true,
            fold_builtins: true,
            assume_fks_valid: true,
            congruence: true,
            key_subsumption: true,
            residual_gates: true,
            over_prune: false,
        }
    }
}

impl OptimizerConfig {
    /// The pre-analysis pipeline: every legacy rule on, the install-time
    /// analysis rules (congruence, key subsumption, residual gates) off.
    /// This is the reference build of the sim differential regime.
    pub fn analysis_off() -> Self {
        OptimizerConfig {
            congruence: false,
            key_subsumption: false,
            residual_gates: false,
            ..OptimizerConfig::default()
        }
    }

    /// Does any satisfiability-analysis rule run?
    pub fn analysis_enabled(&self) -> bool {
        self.enabled && (self.congruence || self.key_subsumption)
    }
}

/// A body dropped by the pipeline, with the rule that proved it
/// unsatisfiable — kept for the assertion linter (`EXPLAIN ASSERTION`).
#[derive(Debug, Clone)]
pub struct PrunedBody {
    /// The body as it stood when the rule fired.
    pub body: Vec<Literal>,
    /// Why it was dropped.
    pub reason: PruneReason,
}

/// The result of optimizing a set of candidate bodies.
#[derive(Debug, Clone, Default)]
pub struct OptimizeOutcome {
    /// Simplified, satisfiable, deduplicated bodies (install these).
    pub kept: Vec<Vec<Literal>>,
    /// Bodies proved unsatisfiable, with reasons (canonical duplicates are
    /// dropped silently, not recorded here).
    pub pruned: Vec<PrunedBody>,
}

/// Optimize a set of candidate EDC bodies: simplify each, drop
/// unsatisfiable ones (recording why), and deduplicate.
pub fn optimize_bodies(
    bodies: Vec<Vec<Literal>>,
    cat: &SchemaCatalog,
    config: &OptimizerConfig,
) -> OptimizeOutcome {
    if !config.enabled {
        return OptimizeOutcome {
            kept: bodies,
            pruned: Vec::new(),
        };
    }
    let mut out = OptimizeOutcome::default();
    let mut seen = BTreeSet::new();
    for body in bodies {
        match simplify_body(body.clone(), cat, config) {
            Ok(simplified) => {
                if config.dedup {
                    let key = canonical_key(&simplified);
                    if !seen.insert(key) {
                        continue;
                    }
                }
                out.kept.push(simplified);
            }
            Err(reason) => out.pruned.push(PrunedBody { body, reason }),
        }
    }
    out
}

/// Simplify one body through the rule pipeline; `Err` carries the rule
/// that proved the body unsatisfiable.
pub fn simplify_body(
    body: Vec<Literal>,
    cat: &SchemaCatalog,
    config: &OptimizerConfig,
) -> Result<Vec<Literal>, PruneReason> {
    if !config.enabled {
        return Ok(body);
    }

    // Rule: literal deduplication.
    let mut lits: Vec<Literal> = Vec::with_capacity(body.len());
    if config.dedup {
        for l in body {
            if !lits.contains(&l) {
                lits.push(l);
            }
        }
    } else {
        lits = body;
    }

    // Rule: event contradictions & event-set reasoning.
    let pos: Vec<Atom> = lits
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    if config.event_contradictions {
        for a in &pos {
            // Pos(A) ∧ Neg(A) → ⊥.
            if lits.iter().any(|l| matches!(l, Literal::Neg(n) if n == a)) {
                return Err(PruneReason::new(
                    "event-contradiction",
                    "an atom occurs both positively and negated",
                ));
            }
            match &a.pred {
                Pred::Ins(t) => {
                    // ι_T(x̄) ∧ δ_T(x̄) → ⊥ (disjoint events).
                    if pos
                        .iter()
                        .any(|b| b.pred == Pred::Del(t.clone()) && b.args == a.args)
                    {
                        return Err(PruneReason::new(
                            "event-contradiction",
                            format!("a row cannot be both inserted into and deleted from {t}"),
                        ));
                    }
                    // ι_T(x̄) ∧ T(x̄) → ⊥ (set semantics).
                    if pos
                        .iter()
                        .any(|b| b.pred == Pred::Base(t.clone()) && b.args == a.args)
                    {
                        return Err(PruneReason::new(
                            "event-contradiction",
                            format!("an existing {t} row cannot be inserted again"),
                        ));
                    }
                }
                Pred::Del(t)
                    // δ_T(x̄) ∧ ¬T(x̄) → ⊥ (only existing rows are deleted).
                    if lits.iter().any(|l| {
                        matches!(l, Literal::Neg(n)
                            if n.pred == Pred::Base(t.clone()) && n.args == a.args)
                    }) =>
                {
                    return Err(PruneReason::new(
                        "event-contradiction",
                        format!("only existing {t} rows can be deleted"),
                    ));
                }
                _ => {}
            }
        }
    }

    // Rule: redundant literal elimination using the same invariants.
    if config.redundant_negations {
        lits.retain(|l| match l {
            // ι_T(x̄) present ⇒ ¬δ_T(x̄), ¬T(x̄) are implied.
            Literal::Neg(n) => {
                let implied_by_ins = |t: &str| {
                    pos.iter()
                        .any(|a| a.pred == Pred::Ins(t.to_string()) && a.args == n.args)
                };
                let implied_by_del = |t: &str| {
                    pos.iter()
                        .any(|a| a.pred == Pred::Del(t.to_string()) && a.args == n.args)
                };
                match &n.pred {
                    Pred::Del(t) => !implied_by_ins(t),
                    Pred::Base(t) => !implied_by_ins(t),
                    Pred::Ins(t) => !implied_by_del(t),
                    _ => true,
                }
            }
            _ => true,
        });
        // δ_T(x̄) present ⇒ T(x̄) is implied; drop the redundant positive
        // atom (its variables stay bound through the δ atom).
        let del_atoms: Vec<Atom> = lits
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if matches!(a.pred, Pred::Del(_)) => Some(a.clone()),
                _ => None,
            })
            .collect();
        lits.retain(|l| match l {
            Literal::Pos(a) => match &a.pred {
                Pred::Base(t) => !del_atoms
                    .iter()
                    .any(|d| d.pred == Pred::Del(t.clone()) && d.args == a.args),
                _ => true,
            },
            _ => true,
        });
    }

    // Rule: built-in folding and bound propagation.
    if config.fold_builtins {
        let mut bounds: BTreeMap<Var, VarBounds> = BTreeMap::new();
        let mut kept = Vec::with_capacity(lits.len());
        for l in lits {
            match &l {
                Literal::Cmp(op, a, b) => match (a, b) {
                    (Term::Const(x), Term::Const(y)) => match eval_cmp(*op, x, y) {
                        Some(true) => {} // trivially true: drop
                        Some(false) => {
                            return Err(PruneReason::new(
                                "constant-fold",
                                format!("comparison {x} {op} {y} is false"),
                            ));
                        }
                        None => kept.push(l), // incomparable (mixed types): keep
                    },
                    (Term::Var(v), Term::Var(w)) if v == w => match op {
                        CmpOp::Eq | CmpOp::LtEq | CmpOp::GtEq => {} // x = x: drop
                        CmpOp::NotEq | CmpOp::Lt | CmpOp::Gt => {
                            return Err(PruneReason::new(
                                "constant-fold",
                                format!("a value never satisfies {op} itself"),
                            ));
                        }
                    },
                    (Term::Var(v), Term::Const(k)) => {
                        if !bounds.entry(*v).or_default().add(*op, k) {
                            return Err(PruneReason::new(
                                "interval",
                                format!("no value satisfies the combined bounds ({op} {k})"),
                            ));
                        }
                        kept.push(l);
                    }
                    (Term::Const(k), Term::Var(v)) => {
                        if !bounds.entry(*v).or_default().add(op.flip(), k) {
                            return Err(PruneReason::new(
                                "interval",
                                format!(
                                    "no value satisfies the combined bounds ({} {k})",
                                    op.flip()
                                ),
                            ));
                        }
                        kept.push(l);
                    }
                    _ => kept.push(l),
                },
                // Constants are never NULL: drop or prune the literal.
                Literal::IsNull {
                    term: Term::Const(_),
                    negated,
                } => {
                    if !negated {
                        return Err(PruneReason::new("null", "a constant is never NULL"));
                    }
                }
                _ => kept.push(l),
            }
        }
        lits = kept;
    }

    // Rule: foreign-key pruning (the paper's EDC 5): an insertion ι_P(x̄)
    // is impossible when another OLD-state literal (base or deletion event)
    // of a child table C carries an FK to P over exactly x̄'s key columns —
    // the parent row already existed, and set semantics forbid re-insertion.
    if config.assume_fks_valid {
        let ins_atoms: Vec<Atom> = lits
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if matches!(a.pred, Pred::Ins(_)) => Some(a.clone()),
                _ => None,
            })
            .collect();
        for ins in &ins_atoms {
            let Pred::Ins(parent) = &ins.pred else {
                unreachable!()
            };
            for l in &lits {
                let Literal::Pos(child_atom) = l else {
                    continue;
                };
                let child_table = match &child_atom.pred {
                    Pred::Base(t) | Pred::Del(t) => t,
                    _ => continue,
                };
                let Some(child_info) = cat.table(child_table) else {
                    continue;
                };
                for fk in &child_info.foreign_keys {
                    if &fk.ref_table != parent || !cat.fk_targets_key(fk) {
                        continue;
                    }
                    let all_match = fk.columns.iter().zip(&fk.ref_columns).all(|(ci, pi)| {
                        child_atom.args.get(*ci) == ins.args.get(*pi)
                            && child_atom.args.get(*ci).is_some()
                    });
                    if all_match {
                        return Err(PruneReason::new(
                            "fk-pruning",
                            format!(
                                "the foreign key {child_table} → {parent} implies the \
                                 {parent} row already exists (paper's EDC 5)"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Rule: install-time satisfiability analysis (equality congruence,
    // interval reasoning across classes, key subsumption).
    if config.congruence || config.key_subsumption {
        analyze_body(&lits, cat, config.key_subsumption)?;
    }

    // Rule (sim mutant only): over-prune. Drops every body carrying a
    // strict var–const comparison — unsound by construction, so the sim
    // oracle's analysis-on/off differential must flag it.
    if config.over_prune {
        let strict = lits.iter().any(|l| {
            matches!(
                l,
                Literal::Cmp(CmpOp::Lt | CmpOp::Gt, Term::Var(_), Term::Const(_))
                    | Literal::Cmp(CmpOp::Lt | CmpOp::Gt, Term::Const(_), Term::Var(_))
            )
        });
        if strict {
            return Err(PruneReason::new(
                "over-prune",
                "MUTANT: strict comparison misclassified as unsatisfiable",
            ));
        }
    }

    // Safety net: a body must retain at least one positive atom. Should not
    // happen for EDCs (every EDC has an event atom), but guard against
    // degenerate inputs.
    Ok(lits)
}

/// A canonical serialization of a body with variables renumbered by first
/// occurrence, for duplicate elimination.
fn canonical_key(body: &[Literal]) -> String {
    let mut renum: BTreeMap<Var, usize> = BTreeMap::new();
    let mut out = String::new();
    let term = |t: &Term, renum: &mut BTreeMap<Var, usize>, out: &mut String| match t {
        Term::Var(v) => {
            let n = renum.len();
            let id = *renum.entry(*v).or_insert(n);
            out.push_str(&format!("v{id}"));
        }
        Term::Const(k) => out.push_str(&format!("{k:?}")),
    };
    for l in body {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => {
                out.push_str(if matches!(l, Literal::Pos(_)) {
                    "+"
                } else {
                    "-"
                });
                out.push_str(&format!("{:?}(", a.pred));
                for t in &a.args {
                    term(t, &mut renum, &mut out);
                    out.push(',');
                }
                out.push(')');
            }
            Literal::Cmp(op, a, b) => {
                out.push_str(&format!("cmp{op:?}("));
                term(a, &mut renum, &mut out);
                out.push(',');
                term(b, &mut renum, &mut out);
                out.push(')');
            }
            Literal::IsNull { term: t, negated } => {
                out.push_str(if *negated { "notnull(" } else { "isnull(" });
                term(t, &mut renum, &mut out);
                out.push(')');
            }
        }
        out.push(';');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> SchemaCatalog {
        use crate::catalog::{FkInfo, TableInfo};
        let mut c = SchemaCatalog::new();
        c.add_table(
            "p",
            TableInfo {
                columns: vec!["pk".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        c.add_table(
            "c",
            TableInfo {
                columns: vec!["ck".into(), "fk".into()],
                primary_key: vec![0],
                foreign_keys: vec![FkInfo {
                    columns: vec![1],
                    ref_table: "p".into(),
                    ref_columns: vec![0],
                }],
            },
        );
        c
    }

    fn simplify(body: Vec<Literal>) -> Result<Vec<Literal>, PruneReason> {
        simplify_body(body, &cat(), &OptimizerConfig::default())
    }

    fn pos(pred: Pred, args: Vec<Term>) -> Literal {
        Literal::Pos(Atom::new(pred, args))
    }

    fn neg(pred: Pred, args: Vec<Term>) -> Literal {
        Literal::Neg(Atom::new(pred, args))
    }

    #[test]
    fn prunes_ins_and_del_of_same_tuple() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b).unwrap_err().rule, "event-contradiction");
    }

    #[test]
    fn prunes_ins_of_existing_row() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b).unwrap_err().rule, "event-contradiction");
    }

    #[test]
    fn prunes_del_of_missing_row() {
        let b = vec![
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b).unwrap_err().rule, "event-contradiction");
    }

    #[test]
    fn prunes_pos_neg_contradiction() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert!(simplify(b).is_err());
    }

    #[test]
    fn drops_redundant_negations() {
        // ι_p(x) ∧ ¬δ_p(x) ∧ ¬p(x): both negations implied by normalization.
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            neg(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        let s = simplify(b).unwrap();
        assert_eq!(s.len(), 1);
        // δ_p(x) implies ¬ι_p(x) and p(x).
        let b = vec![
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        let s = simplify(b).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn folds_constant_comparisons() {
        let keep = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(
                CmpOp::Lt,
                Term::Const(Konst::Int(1)),
                Term::Const(Konst::Int(2)),
            ),
        ];
        assert_eq!(simplify(keep).unwrap().len(), 1, "true comparison dropped");
        let dead = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(
                CmpOp::Gt,
                Term::Const(Konst::Int(1)),
                Term::Const(Konst::Int(2)),
            ),
        ];
        assert_eq!(simplify(dead).unwrap_err().rule, "constant-fold");
    }

    #[test]
    fn detects_interval_contradictions() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Const(Konst::Int(3))),
        ];
        assert_eq!(simplify(b).unwrap_err().rule, "interval");
        // Boundary: x > 5 ∧ x < 6 is satisfiable for reals… and for ints
        // too in our conservative model (we don't assume integrality).
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Const(Konst::Int(6))),
        ];
        assert!(simplify(b).is_ok());
        // x >= 5 ∧ x <= 5 fine; x > 5 ∧ x <= 5 dead.
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::LtEq, Term::Var(0), Term::Const(Konst::Int(5))),
        ];
        assert!(simplify(b).is_err());
    }

    #[test]
    fn same_var_comparisons() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::NotEq, Term::Var(0), Term::Var(0)),
        ];
        assert!(simplify(b).is_err());
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Eq, Term::Var(0), Term::Var(0)),
        ];
        assert_eq!(simplify(b).unwrap().len(), 1);
    }

    #[test]
    fn congruence_closure_prunes_through_equalities() {
        // x = y ∧ y = 3 ∧ x > 5: dead only through the congruence class.
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Eq, Term::Var(0), Term::Var(1)),
            Literal::Cmp(CmpOp::Eq, Term::Var(1), Term::Const(Konst::Int(3))),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
        ];
        assert!(simplify(b.clone()).is_err());
        // The legacy (analysis-off) pipeline misses it.
        assert!(simplify_body(b, &cat(), &OptimizerConfig::analysis_off()).is_ok());
    }

    #[test]
    fn key_subsumption_prunes_same_row_conflict() {
        // p has a single-column primary key, so two base atoms p(x) where
        // the key is the whole row can't disagree; use c(ck PK, fk):
        // c(K, 1) ∧ c(K, 2) → same row, two fk values.
        let b = vec![
            pos(
                Pred::Base("c".into()),
                vec![Term::Var(0), Term::Const(Konst::Int(1))],
            ),
            pos(
                Pred::Base("c".into()),
                vec![Term::Var(0), Term::Const(Konst::Int(2))],
            ),
        ];
        assert_eq!(simplify(b.clone()).unwrap_err().rule, "key-subsumption");
        assert!(simplify_body(b, &cat(), &OptimizerConfig::analysis_off()).is_ok());
    }

    #[test]
    fn fk_pruning_discards_parent_insertion() {
        // δ_c(ck, fk→x) ∧ ι_p(x): the FK from c.fk to p.pk means p(x)
        // existed → ι_p(x) impossible.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(0)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b).unwrap_err().rule, "fk-pruning");
        // Without the flag it survives.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(0)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        let cfg = OptimizerConfig {
            assume_fks_valid: false,
            ..OptimizerConfig::default()
        };
        assert!(simplify_body(b, &cat(), &cfg).is_ok());
    }

    #[test]
    fn fk_pruning_requires_matching_vars() {
        // Different variable in the FK position: no pruning.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(2)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        assert!(simplify(b).is_ok());
    }

    #[test]
    fn optimize_bodies_dedups_canonical_variants() {
        // Same body with different variable ids.
        let b1 = vec![pos(Pred::Ins("p".into()), vec![Term::Var(3)])];
        let b2 = vec![pos(Pred::Ins("p".into()), vec![Term::Var(9)])];
        let out = optimize_bodies(vec![b1, b2], &cat(), &OptimizerConfig::default());
        assert_eq!(out.kept.len(), 1);
        assert!(out.pruned.is_empty());
    }

    #[test]
    fn optimize_bodies_records_prune_reasons() {
        let dead = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
        ];
        let live = vec![pos(Pred::Ins("p".into()), vec![Term::Var(0)])];
        let out = optimize_bodies(vec![dead, live], &cat(), &OptimizerConfig::default());
        assert_eq!(out.kept.len(), 1);
        assert_eq!(out.pruned.len(), 1);
        assert_eq!(out.pruned[0].reason.rule, "event-contradiction");
    }

    #[test]
    fn disabled_optimizer_passes_through() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
        ];
        let cfg = OptimizerConfig {
            enabled: false,
            ..OptimizerConfig::default()
        };
        let out = optimize_bodies(vec![b.clone()], &cat(), &cfg);
        assert_eq!(out.kept, vec![b]);
    }

    #[test]
    fn over_prune_mutant_drops_strict_comparisons() {
        // a < 0 over an insertion event: satisfiable, but the mutant rule
        // prunes it — exactly the unsoundness the sim oracle must catch.
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Const(Konst::Int(0))),
        ];
        assert!(simplify(b.clone()).is_ok(), "sound pipeline keeps it");
        let cfg = OptimizerConfig {
            over_prune: true,
            ..OptimizerConfig::default()
        };
        assert_eq!(
            simplify_body(b, &cat(), &cfg).unwrap_err().rule,
            "over-prune"
        );
    }

    #[test]
    fn isnull_on_constant() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::IsNull {
                term: Term::Const(Konst::Int(1)),
                negated: false,
            },
        ];
        assert!(simplify(b).is_err());
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::IsNull {
                term: Term::Const(Konst::Int(1)),
                negated: true,
            },
        ];
        assert_eq!(simplify(b).unwrap().len(), 1);
    }
}
