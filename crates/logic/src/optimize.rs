//! Semantic optimization of EDC bodies (paper §2: "TINTIN incorporates some
//! semantic optimizations … which allow performing integrity checking more
//! efficiently").
//!
//! All rewrites rely on the normalized-event invariants established by
//! `Database::normalize_events`:
//!
//! * `ins_T ∩ T = ∅` (set semantics: no insertion of an existing row),
//! * `del_T ⊆ T` (only existing rows are deleted),
//! * `ins_T ∩ del_T = ∅` (cancellation).
//!
//! Passes: literal deduplication, contradiction pruning, event-disjointness
//! pruning, redundant-negation elimination, built-in constant folding with
//! per-variable bound propagation, foreign-key pruning (the paper's EDC 5),
//! and canonical duplicate elimination.

use crate::catalog::SchemaCatalog;
use crate::ir::*;
use std::collections::{BTreeMap, BTreeSet};

/// Optimizer switches (split out for the ablation benchmarks).
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Master switch; when false bodies pass through untouched.
    pub enabled: bool,
    /// Apply FK pruning (assumes foreign keys hold in the old state).
    pub assume_fks_valid: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enabled: true,
            assume_fks_valid: true,
        }
    }
}

/// Optimize a set of candidate EDC bodies: simplify each, drop unsatisfiable
/// ones, and deduplicate.
pub fn optimize_bodies(
    bodies: Vec<Vec<Literal>>,
    cat: &SchemaCatalog,
    config: &OptimizerConfig,
) -> Vec<Vec<Literal>> {
    if !config.enabled {
        return bodies;
    }
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for body in bodies {
        let Some(simplified) = simplify_body(body, cat, config) else {
            continue;
        };
        let key = canonical_key(&simplified);
        if seen.insert(key) {
            out.push(simplified);
        }
    }
    out
}

/// Simplify one body; `None` means the body is unsatisfiable (pruned).
pub fn simplify_body(
    body: Vec<Literal>,
    cat: &SchemaCatalog,
    config: &OptimizerConfig,
) -> Option<Vec<Literal>> {
    // 1. Deduplicate identical literals.
    let mut lits: Vec<Literal> = Vec::with_capacity(body.len());
    for l in body {
        if !lits.contains(&l) {
            lits.push(l);
        }
    }

    // 2. Contradictions & event-set reasoning.
    let pos: Vec<Atom> = lits
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    for a in &pos {
        // Pos(A) ∧ Neg(A) → ⊥.
        if lits.iter().any(|l| matches!(l, Literal::Neg(n) if n == a)) {
            return None;
        }
        match &a.pred {
            Pred::Ins(t) => {
                // ι_T(x̄) ∧ δ_T(x̄) → ⊥ (disjoint events).
                if pos
                    .iter()
                    .any(|b| b.pred == Pred::Del(t.clone()) && b.args == a.args)
                {
                    return None;
                }
                // ι_T(x̄) ∧ T(x̄) → ⊥ (set semantics).
                if pos
                    .iter()
                    .any(|b| b.pred == Pred::Base(t.clone()) && b.args == a.args)
                {
                    return None;
                }
            }
            Pred::Del(t)
                // δ_T(x̄) ∧ ¬T(x̄) → ⊥ (only existing rows are deleted).
                if lits.iter().any(|l| {
                    matches!(l, Literal::Neg(n)
                        if n.pred == Pred::Base(t.clone()) && n.args == a.args)
                }) => {
                    return None;
                }
            _ => {}
        }
    }

    // 3. Redundant literal elimination using the same invariants.
    lits.retain(|l| match l {
        // ι_T(x̄) present ⇒ ¬δ_T(x̄), ¬T(x̄) are implied.
        Literal::Neg(n) => {
            let implied_by_ins = |t: &str| {
                pos.iter()
                    .any(|a| a.pred == Pred::Ins(t.to_string()) && a.args == n.args)
            };
            let implied_by_del = |t: &str| {
                pos.iter()
                    .any(|a| a.pred == Pred::Del(t.to_string()) && a.args == n.args)
            };
            match &n.pred {
                Pred::Del(t) => !implied_by_ins(t),
                Pred::Base(t) => !implied_by_ins(t),
                Pred::Ins(t) => !implied_by_del(t),
                _ => true,
            }
        }
        _ => true,
    });
    // δ_T(x̄) present ⇒ T(x̄) is implied; drop the redundant positive atom
    // (its variables stay bound through the δ atom).
    let del_atoms: Vec<Atom> = lits
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) if matches!(a.pred, Pred::Del(_)) => Some(a.clone()),
            _ => None,
        })
        .collect();
    lits.retain(|l| match l {
        Literal::Pos(a) => match &a.pred {
            Pred::Base(t) => !del_atoms
                .iter()
                .any(|d| d.pred == Pred::Del(t.clone()) && d.args == a.args),
            _ => true,
        },
        _ => true,
    });

    // 4. Built-in folding and bound propagation.
    let mut bounds: BTreeMap<Var, VarBounds> = BTreeMap::new();
    let mut kept = Vec::with_capacity(lits.len());
    for l in lits {
        match &l {
            Literal::Cmp(op, a, b) => match (a, b) {
                (Term::Const(x), Term::Const(y)) => match eval_cmp(*op, x, y) {
                    Some(true) => {} // trivially true: drop
                    Some(false) => return None,
                    None => kept.push(l), // incomparable (mixed types): keep
                },
                (Term::Var(v), Term::Var(w)) if v == w => match op {
                    CmpOp::Eq | CmpOp::LtEq | CmpOp::GtEq => {} // x = x: drop
                    CmpOp::NotEq | CmpOp::Lt | CmpOp::Gt => return None,
                },
                (Term::Var(v), Term::Const(k)) => {
                    if !bounds.entry(*v).or_default().add(*op, k) {
                        return None;
                    }
                    kept.push(l);
                }
                (Term::Const(k), Term::Var(v)) => {
                    if !bounds.entry(*v).or_default().add(op.flip(), k) {
                        return None;
                    }
                    kept.push(l);
                }
                _ => kept.push(l),
            },
            // Constants are never NULL: drop or prune the literal.
            Literal::IsNull {
                term: Term::Const(_),
                negated,
            } => {
                if !negated {
                    return None;
                }
            }
            _ => kept.push(l),
        }
    }
    let lits = kept;

    // 5. Foreign-key pruning (the paper's EDC 5): an insertion ι_P(x̄) is
    //    impossible when another OLD-state literal (base or deletion event)
    //    of a child table C carries an FK to P over exactly x̄'s key columns
    //    — the parent row already existed, and set semantics forbid
    //    re-insertion.
    if config.assume_fks_valid {
        let ins_atoms: Vec<Atom> = lits
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if matches!(a.pred, Pred::Ins(_)) => Some(a.clone()),
                _ => None,
            })
            .collect();
        for ins in &ins_atoms {
            let Pred::Ins(parent) = &ins.pred else {
                unreachable!()
            };
            for l in &lits {
                let Literal::Pos(child_atom) = l else {
                    continue;
                };
                let child_table = match &child_atom.pred {
                    Pred::Base(t) | Pred::Del(t) => t,
                    _ => continue,
                };
                let Some(child_info) = cat.table(child_table) else {
                    continue;
                };
                for fk in &child_info.foreign_keys {
                    if &fk.ref_table != parent || !cat.fk_targets_key(fk) {
                        continue;
                    }
                    let all_match = fk.columns.iter().zip(&fk.ref_columns).all(|(ci, pi)| {
                        child_atom.args.get(*ci) == ins.args.get(*pi)
                            && child_atom.args.get(*ci).is_some()
                    });
                    if all_match {
                        return None;
                    }
                }
            }
        }
    }

    // 6. Safety net: a body must retain at least one positive atom.
    if !lits.iter().any(|l| l.is_positive_atom()) {
        // Should not happen for EDCs (every EDC has an event atom), but
        // guard against degenerate inputs.
        return Some(lits);
    }
    Some(lits)
}

/// Numeric/string interval tracking for one variable.
#[derive(Debug, Default, Clone)]
struct VarBounds {
    lo: Option<(Konst, bool)>, // (bound, strict)
    hi: Option<(Konst, bool)>,
    eq: Option<Konst>,
    neq: Vec<Konst>,
}

impl VarBounds {
    /// Add `var op k`; returns false when the constraints become empty.
    fn add(&mut self, op: CmpOp, k: &Konst) -> bool {
        match op {
            CmpOp::Eq => {
                if let Some(e) = &self.eq {
                    if !konst_eq(e, k) {
                        return false;
                    }
                }
                if self.neq.iter().any(|n| konst_eq(n, k)) {
                    return false;
                }
                self.eq = Some(k.clone());
            }
            CmpOp::NotEq => {
                if let Some(e) = &self.eq {
                    if konst_eq(e, k) {
                        return false;
                    }
                }
                self.neq.push(k.clone());
            }
            CmpOp::Lt | CmpOp::LtEq => {
                let strict = op == CmpOp::Lt;
                let tighter = match &self.hi {
                    None => true,
                    Some((h, hs)) => match konst_cmp(k, h) {
                        Some(std::cmp::Ordering::Less) => true,
                        Some(std::cmp::Ordering::Equal) => strict && !hs,
                        _ => false,
                    },
                };
                if tighter {
                    self.hi = Some((k.clone(), strict));
                }
            }
            CmpOp::Gt | CmpOp::GtEq => {
                let strict = op == CmpOp::Gt;
                let tighter = match &self.lo {
                    None => true,
                    Some((l, ls)) => match konst_cmp(k, l) {
                        Some(std::cmp::Ordering::Greater) => true,
                        Some(std::cmp::Ordering::Equal) => strict && !ls,
                        _ => false,
                    },
                };
                if tighter {
                    self.lo = Some((k.clone(), strict));
                }
            }
        }
        self.consistent()
    }

    fn consistent(&self) -> bool {
        if let (Some((lo, ls)), Some((hi, hs))) = (&self.lo, &self.hi) {
            match konst_cmp(lo, hi) {
                Some(std::cmp::Ordering::Greater) => return false,
                Some(std::cmp::Ordering::Equal) if *ls || *hs => return false,
                _ => {}
            }
        }
        if let Some(e) = &self.eq {
            if let Some((lo, ls)) = &self.lo {
                match konst_cmp(e, lo) {
                    Some(std::cmp::Ordering::Less) => return false,
                    Some(std::cmp::Ordering::Equal) if *ls => return false,
                    _ => {}
                }
            }
            if let Some((hi, hs)) = &self.hi {
                match konst_cmp(e, hi) {
                    Some(std::cmp::Ordering::Greater) => return false,
                    Some(std::cmp::Ordering::Equal) if *hs => return false,
                    _ => {}
                }
            }
        }
        true
    }
}

fn konst_cmp(a: &Konst, b: &Konst) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Konst::Int(x), Konst::Int(y)) => Some(x.cmp(y)),
        (Konst::Real(x), Konst::Real(y)) => x.partial_cmp(y),
        (Konst::Int(x), Konst::Real(y)) => (*x as f64).partial_cmp(y),
        (Konst::Real(x), Konst::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Konst::Str(x), Konst::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

fn konst_eq(a: &Konst, b: &Konst) -> bool {
    konst_cmp(a, b) == Some(std::cmp::Ordering::Equal)
}

fn eval_cmp(op: CmpOp, a: &Konst, b: &Konst) -> Option<bool> {
    let ord = konst_cmp(a, b)?;
    Some(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::GtEq => ord != std::cmp::Ordering::Less,
    })
}

/// A canonical serialization of a body with variables renumbered by first
/// occurrence, for duplicate elimination.
fn canonical_key(body: &[Literal]) -> String {
    let mut renum: BTreeMap<Var, usize> = BTreeMap::new();
    let mut out = String::new();
    let term = |t: &Term, renum: &mut BTreeMap<Var, usize>, out: &mut String| match t {
        Term::Var(v) => {
            let n = renum.len();
            let id = *renum.entry(*v).or_insert(n);
            out.push_str(&format!("v{id}"));
        }
        Term::Const(k) => out.push_str(&format!("{k:?}")),
    };
    for l in body {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => {
                out.push_str(if matches!(l, Literal::Pos(_)) {
                    "+"
                } else {
                    "-"
                });
                out.push_str(&format!("{:?}(", a.pred));
                for t in &a.args {
                    term(t, &mut renum, &mut out);
                    out.push(',');
                }
                out.push(')');
            }
            Literal::Cmp(op, a, b) => {
                out.push_str(&format!("cmp{op:?}("));
                term(a, &mut renum, &mut out);
                out.push(',');
                term(b, &mut renum, &mut out);
                out.push(')');
            }
            Literal::IsNull { term: t, negated } => {
                out.push_str(if *negated { "notnull(" } else { "isnull(" });
                term(t, &mut renum, &mut out);
                out.push(')');
            }
        }
        out.push(';');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> SchemaCatalog {
        use crate::catalog::{FkInfo, TableInfo};
        let mut c = SchemaCatalog::new();
        c.add_table(
            "p",
            TableInfo {
                columns: vec!["pk".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        c.add_table(
            "c",
            TableInfo {
                columns: vec!["ck".into(), "fk".into()],
                primary_key: vec![0],
                foreign_keys: vec![FkInfo {
                    columns: vec![1],
                    ref_table: "p".into(),
                    ref_columns: vec![0],
                }],
            },
        );
        c
    }

    fn simplify(body: Vec<Literal>) -> Option<Vec<Literal>> {
        simplify_body(body, &cat(), &OptimizerConfig::default())
    }

    fn pos(pred: Pred, args: Vec<Term>) -> Literal {
        Literal::Pos(Atom::new(pred, args))
    }

    fn neg(pred: Pred, args: Vec<Term>) -> Literal {
        Literal::Neg(Atom::new(pred, args))
    }

    #[test]
    fn prunes_ins_and_del_of_same_tuple() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b), None);
    }

    #[test]
    fn prunes_ins_of_existing_row() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b), None);
    }

    #[test]
    fn prunes_del_of_missing_row() {
        let b = vec![
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b), None);
    }

    #[test]
    fn prunes_pos_neg_contradiction() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b), None);
    }

    #[test]
    fn drops_redundant_negations() {
        // ι_p(x) ∧ ¬δ_p(x) ∧ ¬p(x): both negations implied by normalization.
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            neg(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        let s = simplify(b).unwrap();
        assert_eq!(s.len(), 1);
        // δ_p(x) implies ¬ι_p(x) and p(x).
        let b = vec![
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
            neg(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
        ];
        let s = simplify(b).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn folds_constant_comparisons() {
        let keep = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(
                CmpOp::Lt,
                Term::Const(Konst::Int(1)),
                Term::Const(Konst::Int(2)),
            ),
        ];
        assert_eq!(simplify(keep).unwrap().len(), 1, "true comparison dropped");
        let dead = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(
                CmpOp::Gt,
                Term::Const(Konst::Int(1)),
                Term::Const(Konst::Int(2)),
            ),
        ];
        assert_eq!(simplify(dead), None);
    }

    #[test]
    fn detects_interval_contradictions() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Const(Konst::Int(3))),
        ];
        assert_eq!(simplify(b), None);
        // Boundary: x > 5 ∧ x < 6 is satisfiable for reals… and for ints
        // too in our conservative model (we don't assume integrality).
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Const(Konst::Int(6))),
        ];
        assert!(simplify(b).is_some());
        // x >= 5 ∧ x <= 5 fine; x > 5 ∧ x <= 5 dead.
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Gt, Term::Var(0), Term::Const(Konst::Int(5))),
            Literal::Cmp(CmpOp::LtEq, Term::Var(0), Term::Const(Konst::Int(5))),
        ];
        assert_eq!(simplify(b), None);
    }

    #[test]
    fn same_var_comparisons() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::NotEq, Term::Var(0), Term::Var(0)),
        ];
        assert_eq!(simplify(b), None);
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::Cmp(CmpOp::Eq, Term::Var(0), Term::Var(0)),
        ];
        assert_eq!(simplify(b).unwrap().len(), 1);
    }

    #[test]
    fn fk_pruning_discards_parent_insertion() {
        // δ_c(ck, fk→x) ∧ ι_p(x): the FK from c.fk to p.pk means p(x)
        // existed → ι_p(x) impossible.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(0)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        assert_eq!(simplify(b), None);
        // Without the flag it survives.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(0)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        let cfg = OptimizerConfig {
            enabled: true,
            assume_fks_valid: false,
        };
        assert!(simplify_body(b, &cat(), &cfg).is_some());
    }

    #[test]
    fn fk_pruning_requires_matching_vars() {
        // Different variable in the FK position: no pruning.
        let b = vec![
            pos(Pred::Del("c".into()), vec![Term::Var(1), Term::Var(2)]),
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
        ];
        assert!(simplify(b).is_some());
    }

    #[test]
    fn optimize_bodies_dedups_canonical_variants() {
        // Same body with different variable ids.
        let b1 = vec![pos(Pred::Ins("p".into()), vec![Term::Var(3)])];
        let b2 = vec![pos(Pred::Ins("p".into()), vec![Term::Var(9)])];
        let out = optimize_bodies(vec![b1, b2], &cat(), &OptimizerConfig::default());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn disabled_optimizer_passes_through() {
        let b = vec![
            pos(Pred::Ins("p".into()), vec![Term::Var(0)]),
            pos(Pred::Del("p".into()), vec![Term::Var(0)]),
        ];
        let cfg = OptimizerConfig {
            enabled: false,
            assume_fks_valid: true,
        };
        let out = optimize_bodies(vec![b.clone()], &cat(), &cfg);
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn isnull_on_constant() {
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::IsNull {
                term: Term::Const(Konst::Int(1)),
                negated: false,
            },
        ];
        assert_eq!(simplify(b), None);
        let b = vec![
            pos(Pred::Base("p".into()), vec![Term::Var(0)]),
            Literal::IsNull {
                term: Term::Const(Konst::Int(1)),
                negated: true,
            },
        ];
        assert_eq!(simplify(b).unwrap().len(), 1);
    }
}
