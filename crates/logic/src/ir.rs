//! Logic intermediate representation: terms, atoms, literals, denials and
//! derived-predicate rules.
//!
//! A **denial** is a rule `L1 ∧ … ∧ Ln → ⊥` stating a condition that must
//! never hold (paper §2). Atoms range over base relations (tables), the
//! insertion/deletion event relations `ι_T` / `δ_T` (materialized as the
//! `ins_T` / `del_T` tables), and non-recursive derived predicates defined
//! by rules in a [`Registry`].

use std::collections::BTreeMap;
use std::fmt;

/// A logic variable, identified by index into the program's variable pool.
pub type Var = u32;

/// Constant values in logic programs (no NULL — assertions that need NULL
/// tests use the [`Literal::IsNull`] built-in on variables instead).
#[derive(Debug, Clone, PartialEq)]
pub enum Konst {
    Int(i64),
    Real(f64),
    Str(String),
}

impl Eq for Konst {}

impl std::hash::Hash for Konst {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Konst::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Konst::Real(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Konst::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Konst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Konst::Int(v) => write!(f, "{v}"),
            Konst::Real(v) => write!(f, "{v}"),
            Konst::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    Var(Var),
    Const(Konst),
}

impl Term {
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// Identifier of a derived predicate within a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DerivedId(pub u32);

/// Predicate symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pred {
    /// Base relation (a table).
    Base(String),
    /// Insertion events `ι_T` (the `ins_T` table).
    Ins(String),
    /// Deletion events `δ_T` (the `del_T` table).
    Del(String),
    /// Derived predicate defined by rules.
    Derived(DerivedId),
}

impl Pred {
    /// The base table behind an extensional predicate, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            Pred::Base(t) | Pred::Ins(t) | Pred::Del(t) => Some(t),
            Pred::Derived(_) => None,
        }
    }

    pub fn is_event(&self) -> bool {
        matches!(self, Pred::Ins(_) | Pred::Del(_))
    }
}

/// An atom `p(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub pred: Pred,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Variables of this atom, in order of occurrence, deduplicated.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }
}

/// Comparison operators for built-in literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::NotEq,
            CmpOp::NotEq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::GtEq,
            CmpOp::LtEq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::LtEq,
            CmpOp::GtEq => CmpOp::Lt,
        }
    }

    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    Pos(Atom),
    Neg(Atom),
    Cmp(CmpOp, Term, Term),
    IsNull { term: Term, negated: bool },
}

impl Literal {
    /// Variables occurring in the literal.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.vars(),
            Literal::Cmp(_, l, r) => {
                let mut out = Vec::new();
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        if !out.contains(v) {
                            out.push(*v);
                        }
                    }
                }
                out
            }
            Literal::IsNull { term, .. } => term.as_var().into_iter().collect(),
        }
    }

    pub fn is_positive_atom(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }
}

/// A denial: `body → ⊥`.
#[derive(Debug, Clone, PartialEq)]
pub struct Denial {
    /// Assertion this denial belongs to.
    pub assertion: String,
    /// Ordinal among the assertion's denials (UNION / OR expansion).
    pub index: usize,
    pub body: Vec<Literal>,
}

/// A rule defining a derived predicate: `head(args) ← body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub head: Vec<Term>,
    pub body: Vec<Literal>,
}

/// Definition of a derived predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedDef {
    /// Human-readable name (used for diagnostics and SQL aliases).
    pub name: String,
    pub arity: usize,
    pub rules: Vec<Rule>,
}

/// The derived-predicate registry plus the variable pool of one logic
/// program. Variable identity is global to a program.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    defs: Vec<DerivedDef>,
    var_names: Vec<String>,
    /// Memoized event transforms of derived predicates:
    /// (kind, base def) → transformed def.
    event_memo: BTreeMap<(EventKind, DerivedId), DerivedId>,
}

/// Which event transform of a derived predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// `ι_d`: tuples true in the new state but not the old.
    Ins,
    /// `δ_d`: tuples true in the old state but not the new.
    Del,
    /// `d^n`: the new-state extension of `d`.
    New,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Allocate a fresh variable with a display name (made unique by id).
    pub fn fresh_var(&mut self, name: &str) -> Var {
        let id = self.var_names.len() as Var;
        self.var_names.push(name.to_string());
        id
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        self.var_names
            .get(v as usize)
            .map(|s| s.as_str())
            .unwrap_or("?")
    }

    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Register a derived predicate definition.
    pub fn add_derived(&mut self, def: DerivedDef) -> DerivedId {
        let id = DerivedId(self.defs.len() as u32);
        self.defs.push(def);
        id
    }

    pub fn derived(&self, id: DerivedId) -> &DerivedDef {
        &self.defs[id.0 as usize]
    }

    pub fn derived_mut(&mut self, id: DerivedId) -> &mut DerivedDef {
        &mut self.defs[id.0 as usize]
    }

    pub fn num_derived(&self) -> usize {
        self.defs.len()
    }

    pub(crate) fn event_memo_get(&self, kind: EventKind, id: DerivedId) -> Option<DerivedId> {
        self.event_memo.get(&(kind, id)).copied()
    }

    pub(crate) fn event_memo_put(&mut self, kind: EventKind, id: DerivedId, to: DerivedId) {
        self.event_memo.insert((kind, id), to);
    }

    // ------------------------------------------------------ pretty print

    pub fn term_str(&self, t: &Term) -> String {
        match t {
            Term::Var(v) => self.var_name(*v).to_string(),
            Term::Const(k) => k.to_string(),
        }
    }

    pub fn atom_str(&self, a: &Atom) -> String {
        let pred = match &a.pred {
            Pred::Base(t) => t.clone(),
            Pred::Ins(t) => format!("ins_{t}"),
            Pred::Del(t) => format!("del_{t}"),
            Pred::Derived(id) => self.derived(*id).name.clone(),
        };
        let args: Vec<String> = a.args.iter().map(|t| self.term_str(t)).collect();
        format!("{pred}({})", args.join(", "))
    }

    pub fn literal_str(&self, l: &Literal) -> String {
        match l {
            Literal::Pos(a) => self.atom_str(a),
            Literal::Neg(a) => format!("not {}", self.atom_str(a)),
            Literal::Cmp(op, a, b) => format!("{} {op} {}", self.term_str(a), self.term_str(b)),
            Literal::IsNull { term, negated } => format!(
                "{} is {}null",
                self.term_str(term),
                if *negated { "not " } else { "" }
            ),
        }
    }

    pub fn body_str(&self, body: &[Literal]) -> String {
        body.iter()
            .map(|l| self.literal_str(l))
            .collect::<Vec<_>>()
            .join(" and ")
    }

    pub fn denial_str(&self, d: &Denial) -> String {
        format!("{} -> bottom", self.body_str(&d.body))
    }
}

/// Substitute variables in a term.
pub fn subst_term(t: &Term, map: &BTreeMap<Var, Term>) -> Term {
    match t {
        Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    }
}

/// Substitute variables in a literal.
pub fn subst_literal(l: &Literal, map: &BTreeMap<Var, Term>) -> Literal {
    match l {
        Literal::Pos(a) => Literal::Pos(Atom {
            pred: a.pred.clone(),
            args: a.args.iter().map(|t| subst_term(t, map)).collect(),
        }),
        Literal::Neg(a) => Literal::Neg(Atom {
            pred: a.pred.clone(),
            args: a.args.iter().map(|t| subst_term(t, map)).collect(),
        }),
        Literal::Cmp(op, a, b) => Literal::Cmp(*op, subst_term(a, map), subst_term(b, map)),
        Literal::IsNull { term, negated } => Literal::IsNull {
            term: subst_term(term, map),
            negated: *negated,
        },
    }
}

/// Substitute variables across a body.
pub fn subst_body(body: &[Literal], map: &BTreeMap<Var, Term>) -> Vec<Literal> {
    body.iter().map(|l| subst_literal(l, map)).collect()
}

/// A unification state: variable bindings discovered through equalities.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: BTreeMap<Var, Term>,
}

impl Bindings {
    /// Fully resolve a term through the bindings.
    pub fn resolve(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        let mut steps = 0;
        while let Term::Var(v) = cur {
            match self.map.get(&v) {
                Some(next) => {
                    cur = next.clone();
                    steps += 1;
                    debug_assert!(steps < 100_000, "binding cycle");
                }
                None => break,
            }
        }
        cur
    }

    /// Record `a = b`. Returns false on a constant clash (unsatisfiable).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Var(x), Term::Var(y)) => {
                if x != y {
                    let (young, old) = if x > y { (x, y) } else { (y, x) };
                    self.map.insert(young, Term::Var(old));
                }
                true
            }
            (Term::Var(x), k @ Term::Const(_)) | (k @ Term::Const(_), Term::Var(x)) => {
                self.map.insert(x, k);
                true
            }
            (Term::Const(k1), Term::Const(k2)) => k1 == k2,
        }
    }

    /// Apply the bindings to a body.
    pub fn apply(&self, body: &[Literal]) -> Vec<Literal> {
        let mut full = BTreeMap::new();
        for v in self.map.keys() {
            full.insert(*v, self.resolve(&Term::Var(*v)));
        }
        subst_body(body, &full)
    }
}

/// Variables bound by positive literals of a body (the "range-restricted"
/// variables).
pub fn positively_bound_vars(body: &[Literal]) -> Vec<Var> {
    let mut out = Vec::new();
    for l in body {
        if let Literal::Pos(a) = l {
            for v in a.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_have_names() {
        let mut reg = Registry::new();
        let a = reg.fresh_var("o");
        let b = reg.fresh_var("l");
        assert_ne!(a, b);
        assert_eq!(reg.var_name(a), "o");
        assert_eq!(reg.var_name(b), "l");
    }

    #[test]
    fn atom_vars_dedup() {
        let a = Atom::new(
            Pred::Base("t".into()),
            vec![
                Term::Var(1),
                Term::Var(2),
                Term::Var(1),
                Term::Const(Konst::Int(5)),
            ],
        );
        assert_eq!(a.vars(), vec![1, 2]);
    }

    #[test]
    fn substitution_applies_to_all_literal_kinds() {
        let mut map = BTreeMap::new();
        map.insert(0, Term::Const(Konst::Int(9)));
        let lits = vec![
            Literal::Pos(Atom::new(Pred::Base("t".into()), vec![Term::Var(0)])),
            Literal::Neg(Atom::new(Pred::Ins("t".into()), vec![Term::Var(0)])),
            Literal::Cmp(CmpOp::Lt, Term::Var(0), Term::Var(1)),
            Literal::IsNull {
                term: Term::Var(0),
                negated: false,
            },
        ];
        let out = subst_body(&lits, &map);
        for l in &out {
            match l {
                Literal::Pos(a) | Literal::Neg(a) => {
                    assert_eq!(a.args[0], Term::Const(Konst::Int(9)));
                }
                Literal::Cmp(_, a, _) => assert_eq!(*a, Term::Const(Konst::Int(9))),
                Literal::IsNull { term, .. } => assert_eq!(*term, Term::Const(Konst::Int(9))),
            }
        }
    }

    #[test]
    fn cmp_negate_and_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::GtEq);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn positively_bound_ignores_negated() {
        let body = vec![
            Literal::Pos(Atom::new(Pred::Base("a".into()), vec![Term::Var(0)])),
            Literal::Neg(Atom::new(Pred::Base("b".into()), vec![Term::Var(1)])),
        ];
        assert_eq!(positively_bound_vars(&body), vec![0]);
    }

    #[test]
    fn konst_hash_distinguishes_types() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Konst::Int(1));
        s.insert(Konst::Real(1.0));
        s.insert(Konst::Str("1".into()));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn pretty_printing() {
        let mut reg = Registry::new();
        let o = reg.fresh_var("o");
        let l = reg.fresh_var("l");
        let d = Denial {
            assertion: "atLeastOneLineItem".into(),
            index: 0,
            body: vec![
                Literal::Pos(Atom::new(Pred::Base("orders".into()), vec![Term::Var(o)])),
                Literal::Neg(Atom::new(
                    Pred::Base("lineitem".into()),
                    vec![Term::Var(l), Term::Var(o)],
                )),
            ],
        };
        assert_eq!(
            reg.denial_str(&d),
            "orders(o) and not lineitem(l, o) -> bottom"
        );
    }
}
