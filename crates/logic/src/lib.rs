//! `tintin-logic` — the logical core of the TINTIN reproduction.
//!
//! This crate implements the paper's rewriting pipeline:
//!
//! 1. **Assertions → denials** ([`translate_assertion`]): each SQL
//!    `CREATE ASSERTION` (a `NOT EXISTS` over the relational-algebra
//!    fragment) becomes one or more logic denials `L1 ∧ … ∧ Ln → ⊥`.
//! 2. **Denials → Event Dependency Constraints** ([`EdcGenerator`]): each
//!    denial is expanded with the paper's formulas (2)/(3) into the set of
//!    rules that enumerate exactly how insertion/deletion events can violate
//!    it, with recursive event definitions (`ι_d`, `δ_d`, `dⁿ`) for derived
//!    predicates, grounded in Olivé's event rules.
//! 3. **Semantic optimizations** ([`optimize_bodies`]): disjoint-event and
//!    set-semantics pruning, built-in folding, duplicate elimination, and
//!    the foreign-key pruning the paper illustrates with its EDC 5.
//!
//! The crate is engine-independent: it needs only a [`SchemaCatalog`]
//! describing tables, keys and foreign keys. `tintin-sqlgen` turns the EDCs
//! produced here into executable SQL views.

pub mod analysis;
pub mod catalog;
pub mod edc;
pub mod ir;
pub mod optimize;
pub mod translate;

pub use analysis::{
    analyze_body, residual_gates, BodySummary, ColPredicate, PruneReason, ResidualGate,
};
pub use catalog::{FkInfo, SchemaCatalog, TableInfo};
pub use edc::{referenced_derived, Edc, EdcConfig, EdcError, EdcGenerator, MAX_EDC_BODIES};
pub use ir::{
    positively_bound_vars, subst_body, subst_literal, subst_term, Atom, Bindings, CmpOp, Denial,
    DerivedDef, DerivedId, EventKind, Konst, Literal, Pred, Registry, Rule, Term, Var,
};
pub use optimize::{optimize_bodies, simplify_body, OptimizeOutcome, OptimizerConfig, PrunedBody};
pub use translate::{translate_assertion, TranslateError, MAX_BODIES};
