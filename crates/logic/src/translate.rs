//! SQL assertion → logic denial translation (paper §2, step 1, after \[6\]).
//!
//! The accepted assertion fragment is the one the paper states: the
//! condition is (a conjunction of) `NOT EXISTS (query)` where the query uses
//! selection, projection, join, `EXISTS`/`IN`, `NOT EXISTS`/`NOT IN` and
//! `UNION` over base tables — no aggregates, no arithmetic, no views.
//!
//! Translation outline:
//! * each `FROM` table becomes a positive literal with one fresh variable
//!   per column;
//! * equality conditions unify variables / bind constants;
//! * other comparisons become built-in literals;
//! * `EXISTS` / `IN` subqueries inline positively (with `UNION` and `OR`
//!   handled by DNF expansion into multiple denials);
//! * `NOT EXISTS` / `NOT IN` subqueries become negated literals — a negated
//!   *base* atom when the subquery is a single-table conjunctive select,
//!   otherwise a negated *derived* predicate whose rules are the subquery's
//!   branches.

use crate::catalog::SchemaCatalog;
use crate::ir::*;
use std::collections::BTreeMap;
use std::fmt;
use tintin_sql as sql;

/// Maximum number of denials/rule-bodies one assertion may expand into
/// (guards against DNF explosion).
pub const MAX_BODIES: usize = 128;

/// Error produced during assertion translation.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError {
    pub assertion: String,
    pub message: String,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assertion '{}': {}", self.assertion, self.message)
    }
}

impl std::error::Error for TranslateError {}

type TResult<T> = Result<T, TranslateError>;

/// Translate a `CREATE ASSERTION` into denials, registering derived
/// predicates in `reg`.
pub fn translate_assertion(
    cat: &SchemaCatalog,
    reg: &mut Registry,
    assertion: &sql::CreateAssertion,
) -> TResult<Vec<Denial>> {
    let mut tr = Translator {
        cat,
        reg,
        assertion: assertion.name.clone(),
    };
    let queries = tr.split_condition(&assertion.condition)?;
    let mut denials = Vec::new();
    for q in queries {
        let bodies = tr.translate_query(q, &Env::default(), None)?;
        for body in bodies {
            tr.check_denial_safety(&body)?;
            denials.push(Denial {
                assertion: assertion.name.clone(),
                index: denials.len(),
                body,
            });
        }
    }
    if denials.is_empty() {
        return Err(tr.err("assertion condition is trivially true (no denials produced)"));
    }
    Ok(denials)
}

/// Scoping environment: a stack of frames, each holding the FROM bindings of
/// one enclosing select.
#[derive(Default, Clone)]
struct Env {
    frames: Vec<Frame>,
}

#[derive(Default, Clone)]
struct Frame {
    /// (binding name, table name, column variables)
    sources: Vec<(String, String, Vec<Var>)>,
}

impl Env {
    fn push(&self, frame: Frame) -> Env {
        let mut e = self.clone();
        e.frames.push(frame);
        e
    }
}

struct Translator<'a> {
    cat: &'a SchemaCatalog,
    reg: &'a mut Registry,
    assertion: String,
}

/// A body under construction: accumulated literals plus the variable
/// bindings discovered through equality conditions.
#[derive(Clone, Default)]
struct Partial {
    literals: Vec<Literal>,
    binds: BTreeMap<Var, Term>,
}

impl Partial {
    /// Fully resolve a term through the binding map.
    fn resolve(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        let mut steps = 0;
        while let Term::Var(v) = cur {
            match self.binds.get(&v) {
                Some(next) => {
                    cur = next.clone();
                    steps += 1;
                    debug_assert!(steps < 10_000, "binding cycle");
                }
                None => break,
            }
        }
        cur
    }

    /// Record an equality between two terms. Returns false if the equality
    /// is unsatisfiable (distinct constants), in which case the body can be
    /// discarded.
    fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Var(x), Term::Var(y)) => {
                if x != y {
                    // Keep the older (smaller-id, typically outer) variable
                    // as representative.
                    let (young, old) = if x > y { (x, y) } else { (y, x) };
                    self.binds.insert(young, Term::Var(old));
                }
                true
            }
            (Term::Var(x), k @ Term::Const(_)) | (k @ Term::Const(_), Term::Var(x)) => {
                self.binds.insert(x, k);
                true
            }
            (Term::Const(k1), Term::Const(k2)) => k1 == k2,
        }
    }

    /// Apply the accumulated bindings to all literals, producing the final
    /// body.
    fn finish(&self) -> Vec<Literal> {
        let mut full = BTreeMap::new();
        for v in self.binds.keys() {
            full.insert(*v, self.resolve(&Term::Var(*v)));
        }
        subst_body(&self.literals, &full)
    }
}

impl<'a> Translator<'a> {
    fn err(&self, msg: impl Into<String>) -> TranslateError {
        TranslateError {
            assertion: self.assertion.clone(),
            message: msg.into(),
        }
    }

    /// Split the assertion condition into its `NOT EXISTS (…)` queries.
    fn split_condition<'e>(&self, cond: &'e sql::Expr) -> TResult<Vec<&'e sql::Query>> {
        let mut out = Vec::new();
        for conj in cond.conjuncts() {
            match conj {
                sql::Expr::Exists {
                    query,
                    negated: true,
                } => out.push(&**query),
                sql::Expr::Unary {
                    op: sql::UnOp::Not,
                    expr,
                } => {
                    match &**expr {
                        sql::Expr::Exists {
                            query,
                            negated: false,
                        } => out.push(&**query),
                        _ => return Err(self.err(
                            "assertion condition must be a conjunction of NOT EXISTS (…) clauses",
                        )),
                    }
                }
                _ => {
                    return Err(self.err(
                        "assertion condition must be a conjunction of NOT EXISTS (…) clauses",
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Translate a query into denial bodies (one per DNF branch). When
    /// `probe` is given (IN subqueries), the query's projection is unified
    /// with the probe terms.
    fn translate_query(
        &mut self,
        q: &sql::Query,
        env: &Env,
        probe: Option<&[Term]>,
    ) -> TResult<Vec<Vec<Literal>>> {
        let mut bodies = Vec::new();
        for sel in q.selects() {
            bodies.extend(self.translate_select(sel, env, probe)?);
            if bodies.len() > MAX_BODIES {
                return Err(self.err(format!(
                    "assertion expands into more than {MAX_BODIES} conjunctive bodies \
                     (UNION/OR/IN-list explosion)"
                )));
            }
        }
        Ok(bodies)
    }

    fn translate_select(
        &mut self,
        sel: &sql::Select,
        env: &Env,
        probe: Option<&[Term]>,
    ) -> TResult<Vec<Vec<Literal>>> {
        // Collect FROM leaves and ON conditions.
        let mut leaves = Vec::new();
        let mut cond_exprs: Vec<&sql::Expr> = Vec::new();
        for tr in &sel.from {
            self.flatten_from(tr, &mut leaves, &mut cond_exprs)?;
        }
        if leaves.is_empty() {
            return Err(self.err("assertion subqueries must have a FROM clause"));
        }
        if !sel.group_by.is_empty() || sel.having.is_some() {
            return Err(self.err(
                "GROUP BY / HAVING are not supported in assertions                  (aggregates are the paper's future work)",
            ));
        }
        if let Some(w) = &sel.selection {
            cond_exprs.extend(w.conjuncts());
        }

        // Build the frame: fresh vars per column, positive literal per table.
        let mut frame = Frame::default();
        let mut start = Partial::default();
        for (table, binding) in &leaves {
            let info = self
                .cat
                .table(table)
                .ok_or_else(|| self.err(format!("unknown table '{table}' in assertion")))?;
            if frame.sources.iter().any(|(b, _, _)| b == binding) {
                return Err(self.err(format!("duplicate binding '{binding}' in FROM")));
            }
            let vars: Vec<Var> = info.columns.iter().map(|c| self.reg.fresh_var(c)).collect();
            start.literals.push(Literal::Pos(Atom::new(
                Pred::Base(table.clone()),
                vars.iter().map(|v| Term::Var(*v)).collect(),
            )));
            frame.sources.push((binding.clone(), table.clone(), vars));
        }
        let inner_env = env.push(frame);

        // Process conditions with DNF expansion.
        let mut partials = vec![start];
        for e in cond_exprs {
            partials = self.process_expr_all(partials, e, &inner_env)?;
            if partials.len() > MAX_BODIES {
                return Err(self.err(format!(
                    "assertion expands into more than {MAX_BODIES} conjunctive bodies"
                )));
            }
        }

        // IN-probe unification with the projection.
        if let Some(probe_terms) = probe {
            let proj_exprs = self.projection_exprs(sel)?;
            if proj_exprs.len() != probe_terms.len() {
                return Err(self.err(format!(
                    "IN subquery projects {} columns but probes {}",
                    proj_exprs.len(),
                    probe_terms.len()
                )));
            }
            let mut unified = Vec::new();
            for mut p in partials {
                let mut ok = true;
                for (pe, pt) in proj_exprs.iter().zip(probe_terms) {
                    let t = self.expr_to_term(pe, &inner_env, &p)?;
                    if !p.unify(&t, pt) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    unified.push(p);
                }
            }
            partials = unified;
        }

        Ok(partials.into_iter().map(|p| p.finish()).collect())
    }

    fn projection_exprs<'s>(&self, sel: &'s sql::Select) -> TResult<Vec<&'s sql::Expr>> {
        let mut out = Vec::new();
        for item in &sel.projection {
            match item {
                sql::SelectItem::Expr { expr, .. } => out.push(expr),
                _ => {
                    return Err(
                        self.err("IN subqueries must project explicit columns (no wildcards)")
                    )
                }
            }
        }
        Ok(out)
    }

    fn flatten_from<'t>(
        &self,
        tr: &'t sql::TableRef,
        leaves: &mut Vec<(String, String)>,
        conds: &mut Vec<&'t sql::Expr>,
    ) -> TResult<()> {
        match tr {
            sql::TableRef::Named { name, alias } => {
                leaves.push((name.clone(), alias.clone().unwrap_or_else(|| name.clone())));
                Ok(())
            }
            sql::TableRef::Join {
                left, right, on, ..
            } => {
                self.flatten_from(left, leaves, conds)?;
                self.flatten_from(right, leaves, conds)?;
                if let Some(on) = on {
                    conds.extend(on.conjuncts());
                }
                Ok(())
            }
            sql::TableRef::Subquery { .. } => Err(self.err(
                "derived tables are not part of the assertion fragment \
                 (use EXISTS/IN subqueries instead)",
            )),
        }
    }

    fn process_expr_all(
        &mut self,
        partials: Vec<Partial>,
        e: &sql::Expr,
        env: &Env,
    ) -> TResult<Vec<Partial>> {
        let mut out = Vec::new();
        for p in partials {
            out.extend(self.process_expr(p, e, env)?);
        }
        Ok(out)
    }

    /// Process one boolean condition against a partial body, possibly
    /// fanning out (OR / IN-list) or dying (contradiction).
    fn process_expr(&mut self, p: Partial, e: &sql::Expr, env: &Env) -> TResult<Vec<Partial>> {
        match e {
            sql::Expr::Binary { op, left, right } => match op {
                sql::BinOp::And => {
                    let mid = self.process_expr(p, left, env)?;
                    self.process_expr_all(mid, right, env)
                }
                sql::BinOp::Or => {
                    let mut out = self.process_expr(p.clone(), left, env)?;
                    out.extend(self.process_expr(p, right, env)?);
                    Ok(out)
                }
                sql::BinOp::Eq => {
                    let mut p = p;
                    let lt = self.expr_to_term(left, env, &p)?;
                    let rt = self.expr_to_term(right, env, &p)?;
                    if p.unify(&lt, &rt) {
                        Ok(vec![p])
                    } else {
                        Ok(vec![]) // contradictory constants: branch dies
                    }
                }
                sql::BinOp::NotEq
                | sql::BinOp::Lt
                | sql::BinOp::LtEq
                | sql::BinOp::Gt
                | sql::BinOp::GtEq => {
                    let mut p = p;
                    let lt = self.expr_to_term(left, env, &p)?;
                    let rt = self.expr_to_term(right, env, &p)?;
                    let cmp = match op {
                        sql::BinOp::NotEq => CmpOp::NotEq,
                        sql::BinOp::Lt => CmpOp::Lt,
                        sql::BinOp::LtEq => CmpOp::LtEq,
                        sql::BinOp::Gt => CmpOp::Gt,
                        sql::BinOp::GtEq => CmpOp::GtEq,
                        _ => unreachable!(),
                    };
                    p.literals.push(Literal::Cmp(cmp, lt, rt));
                    Ok(vec![p])
                }
                sql::BinOp::Add | sql::BinOp::Sub | sql::BinOp::Mul | sql::BinOp::Div => {
                    Err(self.err(
                        "arithmetic is not supported in assertions (paper fragment: \
                         selection, projection, join, exists/in, negation, union)",
                    ))
                }
            },
            sql::Expr::Unary {
                op: sql::UnOp::Not,
                expr,
            } => {
                let negated = self.negate_expr(expr)?;
                self.process_expr(p, &negated, env)
            }
            sql::Expr::Unary { op: sql::UnOp::Neg, .. } => {
                Err(self.err("arithmetic negation is not supported in assertions"))
            }
            sql::Expr::Exists { query, negated } => {
                if *negated {
                    self.add_negated_subquery(p, query, env, None)
                } else {
                    // Inline positively: merge each subquery body.
                    let sub_bodies = self.translate_query(query, env, None)?;
                    let mut out = Vec::new();
                    for body in sub_bodies {
                        let mut np = p.clone();
                        np.literals.extend(body);
                        out.push(np);
                    }
                    Ok(out)
                }
            }
            sql::Expr::InSubquery {
                exprs,
                query,
                negated,
            } => {
                let probe_terms: Vec<Term> = exprs
                    .iter()
                    .map(|x| self.expr_to_term(x, env, &p))
                    .collect::<TResult<_>>()?;
                if *negated {
                    self.add_negated_subquery(p, query, env, Some(&probe_terms))
                } else {
                    let sub_bodies = self.translate_query(query, env, Some(&probe_terms))?;
                    let mut out = Vec::new();
                    for body in sub_bodies {
                        let mut np = p.clone();
                        np.literals.extend(body);
                        out.push(np);
                    }
                    Ok(out)
                }
            }
            sql::Expr::InList {
                expr,
                list,
                negated,
            } => {
                let t = self.expr_to_term(expr, env, &p)?;
                if *negated {
                    // x NOT IN (a, b) → x <> a AND x <> b.
                    let mut p = p;
                    for item in list {
                        let it = self.expr_to_term(item, env, &p)?;
                        p.literals.push(Literal::Cmp(CmpOp::NotEq, t.clone(), it));
                    }
                    Ok(vec![p])
                } else {
                    // x IN (a, b) → one branch per element.
                    let mut out = Vec::new();
                    for item in list {
                        let mut np = p.clone();
                        let it = self.expr_to_term(item, env, &np)?;
                        if np.unify(&t, &it) {
                            out.push(np);
                        }
                    }
                    Ok(out)
                }
            }
            sql::Expr::IsNull { expr, negated } => {
                let mut p = p;
                let t = self.expr_to_term(expr, env, &p)?;
                p.literals.push(Literal::IsNull {
                    term: t,
                    negated: *negated,
                });
                Ok(vec![p])
            }
            sql::Expr::Literal(sql::Lit::Bool(true)) => Ok(vec![p]),
            sql::Expr::Literal(sql::Lit::Bool(false)) => Ok(vec![]),
            sql::Expr::Func { .. } => Err(self.err(
                "aggregate functions are not supported in assertions                  (the paper lists this as future work); the engine still                  evaluates them in plain queries",
            )),
            other => Err(self.err(format!(
                "unsupported condition in assertion: {other}"
            ))),
        }
    }

    /// Handle `NOT EXISTS (q)` / `probe NOT IN (q)`: produce a negated base
    /// atom when the subquery is a single-table conjunctive select,
    /// otherwise a negated derived predicate.
    fn add_negated_subquery(
        &mut self,
        p: Partial,
        query: &sql::Query,
        env: &Env,
        probe: Option<&[Term]>,
    ) -> TResult<Vec<Partial>> {
        let sub_bodies = self.translate_query(query, env, probe)?;
        if sub_bodies.is_empty() {
            // The subquery is unsatisfiable → NOT EXISTS is trivially true.
            return Ok(vec![p]);
        }
        let mut p = p;
        // Inline case: exactly one body, consisting of a single positive
        // base atom.
        if sub_bodies.len() == 1 && sub_bodies[0].len() == 1 {
            if let Literal::Pos(atom) = &sub_bodies[0][0] {
                if matches!(atom.pred, Pred::Base(_)) {
                    p.literals.push(Literal::Neg(atom.clone()));
                    return Ok(vec![p]);
                }
            }
        }
        // General case: derived predicate over the outer variables used.
        let outer_vars = self.outer_vars_of(&sub_bodies, env);
        let rules: Vec<Rule> = sub_bodies
            .into_iter()
            .map(|body| Rule {
                head: outer_vars.iter().map(|v| Term::Var(*v)).collect(),
                body,
            })
            .collect();
        let id = self.reg.add_derived(DerivedDef {
            name: format!("{}_aux{}", self.assertion, self.reg.num_derived()),
            arity: outer_vars.len(),
            rules,
        });
        p.literals.push(Literal::Neg(Atom::new(
            Pred::Derived(id),
            outer_vars.iter().map(|v| Term::Var(*v)).collect(),
        )));
        Ok(vec![p])
    }

    /// Outer-scope variables (bound by enclosing frames) that occur in the
    /// given bodies; these become the derived predicate's parameters.
    fn outer_vars_of(&self, bodies: &[Vec<Literal>], env: &Env) -> Vec<Var> {
        let mut outer: Vec<Var> = Vec::new();
        let mut is_outer = std::collections::BTreeSet::new();
        for frame in &env.frames {
            for (_, _, vars) in &frame.sources {
                is_outer.extend(vars.iter().copied());
            }
        }
        for body in bodies {
            for lit in body {
                for v in lit.vars() {
                    if is_outer.contains(&v) && !outer.contains(&v) {
                        outer.push(v);
                    }
                }
            }
        }
        outer
    }

    /// Translate a scalar expression to a term (columns and constants only
    /// in the fragment).
    fn expr_to_term(&self, e: &sql::Expr, env: &Env, p: &Partial) -> TResult<Term> {
        match e {
            sql::Expr::Column(c) => {
                let v = self.resolve_column(c, env)?;
                Ok(p.resolve(&Term::Var(v)))
            }
            sql::Expr::Literal(l) => match l {
                sql::Lit::Int(v) => Ok(Term::Const(Konst::Int(*v))),
                sql::Lit::Real(v) => Ok(Term::Const(Konst::Real(*v))),
                sql::Lit::Str(s) => Ok(Term::Const(Konst::Str(s.clone()))),
                sql::Lit::Null => Err(self.err(
                    "NULL literals in assertion comparisons are not supported \
                     (use IS NULL / IS NOT NULL)",
                )),
                sql::Lit::Bool(_) => Err(self.err("boolean literal used as a value")),
            },
            other => Err(self.err(format!(
                "unsupported scalar expression in assertion: {other} \
                 (the fragment allows columns and constants)"
            ))),
        }
    }

    fn resolve_column(&self, c: &sql::ColumnRef, env: &Env) -> TResult<Var> {
        for frame in env.frames.iter().rev() {
            if let Some(q) = &c.qualifier {
                if let Some((_, table, vars)) = frame.sources.iter().find(|(b, _, _)| b == q) {
                    let info = self.cat.table(table).expect("frame tables exist");
                    return info
                        .column_index(&c.name)
                        .map(|i| vars[i])
                        .ok_or_else(|| self.err(format!("unknown column {q}.{}", c.name)));
                }
            } else {
                let mut hit = None;
                let mut dup = false;
                for (_, table, vars) in &frame.sources {
                    let info = self.cat.table(table).expect("frame tables exist");
                    if let Some(i) = info.column_index(&c.name) {
                        if hit.is_some() {
                            dup = true;
                        }
                        hit = Some(vars[i]);
                    }
                }
                if dup {
                    return Err(self.err(format!("ambiguous column '{}'", c.name)));
                }
                if let Some(v) = hit {
                    return Ok(v);
                }
            }
        }
        Err(self.err(format!("unknown column reference '{c}'")))
    }

    /// Push a NOT through an expression.
    fn negate_expr(&self, e: &sql::Expr) -> TResult<sql::Expr> {
        Ok(match e {
            sql::Expr::Binary { op, left, right } => match op {
                sql::BinOp::And => sql::Expr::binary(
                    sql::BinOp::Or,
                    self.negate_expr(left)?,
                    self.negate_expr(right)?,
                ),
                sql::BinOp::Or => sql::Expr::binary(
                    sql::BinOp::And,
                    self.negate_expr(left)?,
                    self.negate_expr(right)?,
                ),
                op => match op.negate() {
                    Some(neg) => sql::Expr::Binary {
                        op: neg,
                        left: left.clone(),
                        right: right.clone(),
                    },
                    None => {
                        return Err(self.err("cannot negate arithmetic expression in assertion"))
                    }
                },
            },
            sql::Expr::Unary {
                op: sql::UnOp::Not,
                expr,
            } => (**expr).clone(),
            sql::Expr::Exists { query, negated } => sql::Expr::Exists {
                query: query.clone(),
                negated: !negated,
            },
            sql::Expr::InSubquery {
                exprs,
                query,
                negated,
            } => sql::Expr::InSubquery {
                exprs: exprs.clone(),
                query: query.clone(),
                negated: !negated,
            },
            sql::Expr::InList {
                expr,
                list,
                negated,
            } => sql::Expr::InList {
                expr: expr.clone(),
                list: list.clone(),
                negated: !negated,
            },
            sql::Expr::IsNull { expr, negated } => sql::Expr::IsNull {
                expr: expr.clone(),
                negated: !negated,
            },
            sql::Expr::Literal(sql::Lit::Bool(b)) => sql::Expr::Literal(sql::Lit::Bool(!b)),
            other => return Err(self.err(format!("cannot negate expression: {other}"))),
        })
    }

    /// Denials must be range-restricted: variables used in comparisons and
    /// IS NULL tests must be bound by positive literals.
    fn check_denial_safety(&self, body: &[Literal]) -> TResult<()> {
        let bound = positively_bound_vars(body);
        for lit in body {
            match lit {
                Literal::Cmp(..) | Literal::IsNull { .. } => {
                    for v in lit.vars() {
                        if !bound.contains(&v) {
                            return Err(self.err(format!(
                                "unsafe assertion: variable '{}' in a comparison is not \
                                 bound by any positive literal",
                                self.reg.var_name(v)
                            )));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FkInfo, TableInfo};

    fn tpch_cat() -> SchemaCatalog {
        let mut cat = SchemaCatalog::new();
        cat.add_table(
            "orders",
            TableInfo {
                columns: vec![
                    "o_orderkey".into(),
                    "o_custkey".into(),
                    "o_totalprice".into(),
                ],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        cat.add_table(
            "lineitem",
            TableInfo {
                columns: vec![
                    "l_orderkey".into(),
                    "l_linenumber".into(),
                    "l_quantity".into(),
                ],
                primary_key: vec![0, 1],
                foreign_keys: vec![FkInfo {
                    columns: vec![0],
                    ref_table: "orders".into(),
                    ref_columns: vec![0],
                }],
            },
        );
        cat
    }

    fn translate(sql_text: &str) -> (Vec<Denial>, Registry) {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        let sql::Statement::CreateAssertion(a) = tintin_sql::parse_statement(sql_text).unwrap()
        else {
            panic!("not an assertion")
        };
        let denials = translate_assertion(&cat, &mut reg, &a).unwrap();
        (denials, reg)
    }

    #[test]
    fn running_example_produces_expected_denial() {
        let (denials, reg) = translate(
            "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))",
        );
        assert_eq!(denials.len(), 1);
        let d = &denials[0];
        // Body: orders(o, c, p) and not lineitem(_, _, _) with the order key
        // shared — the inner subquery inlines as a negated base atom.
        assert_eq!(d.body.len(), 2);
        assert!(matches!(&d.body[0], Literal::Pos(a) if a.pred == Pred::Base("orders".into())));
        let Literal::Neg(neg) = &d.body[1] else {
            panic!("expected negated literal, got {}", reg.denial_str(d))
        };
        assert_eq!(neg.pred, Pred::Base("lineitem".into()));
        // The shared variable: lineitem's l_orderkey arg equals orders'
        // o_orderkey arg.
        let Literal::Pos(pos) = &d.body[0] else {
            unreachable!()
        };
        assert_eq!(neg.args[0], pos.args[0]);
    }

    #[test]
    fn equality_with_constant_binds() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE o_custkey = 42 AND o_totalprice < 0))",
        );
        let d = &denials[0];
        let Literal::Pos(atom) = &d.body[0] else {
            panic!()
        };
        assert_eq!(atom.args[1], Term::Const(Konst::Int(42)));
        assert!(matches!(&d.body[1], Literal::Cmp(CmpOp::Lt, _, _)));
    }

    #[test]
    fn union_in_checked_query_yields_two_denials() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT o_orderkey FROM orders WHERE o_totalprice < 0
                 UNION
                 SELECT l_orderkey FROM lineitem WHERE l_quantity < 0))",
        );
        assert_eq!(denials.len(), 2);
    }

    #[test]
    fn or_expands_to_two_denials() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE o_totalprice < 0 OR o_custkey = 0))",
        );
        assert_eq!(denials.len(), 2);
    }

    #[test]
    fn exists_inlines_positively() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE o.o_totalprice < 0 AND EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))",
        );
        assert_eq!(denials.len(), 1);
        let body = &denials[0].body;
        // orders + lineitem positive + comparison.
        assert_eq!(
            body.iter().filter(|l| l.is_positive_atom()).count(),
            2,
            "EXISTS should inline as a positive atom"
        );
    }

    #[test]
    fn in_subquery_unifies_probe() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE o.o_orderkey IN (
                     SELECT l_orderkey FROM lineitem WHERE l_quantity > 100)))",
        );
        let body = &denials[0].body;
        assert_eq!(body.iter().filter(|l| l.is_positive_atom()).count(), 2);
        // The probe equality must have unified variables: lineitem's first
        // arg is the same var as orders' first arg.
        let pos: Vec<&Atom> = body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(pos[0].args[0], pos[1].args[0]);
    }

    #[test]
    fn not_in_inlines_as_negated_atom() {
        let (denials, _) = translate(
            "CREATE ASSERTION li_fk CHECK (NOT EXISTS (
                 SELECT * FROM lineitem l WHERE l.l_orderkey NOT IN (
                     SELECT o_orderkey FROM orders)))",
        );
        let body = &denials[0].body;
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[1], Literal::Neg(a) if a.pred == Pred::Base("orders".into())));
    }

    #[test]
    fn complex_not_exists_becomes_derived() {
        let (denials, reg) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l
                     WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 0)))",
        );
        let body = &denials[0].body;
        let Literal::Neg(atom) = &body[1] else {
            panic!()
        };
        let Pred::Derived(id) = &atom.pred else {
            panic!("expected derived predicate (subquery has an extra comparison)")
        };
        let def = reg.derived(*id);
        assert_eq!(def.rules.len(), 1);
        assert_eq!(def.arity, 1, "one shared variable (the order key)");
    }

    #[test]
    fn union_inside_not_exists_becomes_derived_with_two_rules() {
        let (denials, reg) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey
                     UNION
                     SELECT l_orderkey FROM lineitem l2 WHERE l2.l_orderkey = o.o_orderkey
                         AND l2.l_quantity > 5)))",
        );
        let Literal::Neg(atom) = &denials[0].body[1] else {
            panic!()
        };
        let Pred::Derived(id) = &atom.pred else {
            panic!()
        };
        assert_eq!(reg.derived(*id).rules.len(), 2);
    }

    #[test]
    fn in_list_expands_branches() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE o_custkey IN (1, 2, 3)))",
        );
        assert_eq!(denials.len(), 3);
    }

    #[test]
    fn not_in_list_becomes_inequalities() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE o_custkey NOT IN (1, 2)))",
        );
        assert_eq!(denials.len(), 1);
        let cmps = denials[0]
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Cmp(CmpOp::NotEq, _, _)))
            .count();
        assert_eq!(cmps, 2);
    }

    #[test]
    fn rejects_aggregates_and_arithmetic() {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        let sql::Statement::CreateAssertion(a) = tintin_sql::parse_statement(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE o_totalprice + 1 > 2))",
        )
        .unwrap() else {
            panic!()
        };
        let err = translate_assertion(&cat, &mut reg, &a).unwrap_err();
        assert!(
            err.message.contains("arithmetic") || err.message.contains("unsupported scalar"),
            "{err}"
        );
    }

    #[test]
    fn rejects_non_not_exists_condition() {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        let sql::Statement::CreateAssertion(a) =
            tintin_sql::parse_statement("CREATE ASSERTION a CHECK (EXISTS (SELECT * FROM orders))")
                .unwrap()
        else {
            panic!()
        };
        assert!(translate_assertion(&cat, &mut reg, &a).is_err());
    }

    #[test]
    fn rejects_unknown_table_and_column() {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        for text in [
            "CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM nope))",
            "CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM orders WHERE bogus = 1))",
        ] {
            let sql::Statement::CreateAssertion(a) = tintin_sql::parse_statement(text).unwrap()
            else {
                panic!()
            };
            assert!(translate_assertion(&cat, &mut reg, &a).is_err(), "{text}");
        }
    }

    #[test]
    fn conjunction_of_not_exists_gives_multiple_denials() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (
                 NOT EXISTS (SELECT * FROM orders WHERE o_totalprice < 0)
                 AND NOT EXISTS (SELECT * FROM lineitem WHERE l_quantity < 0))",
        );
        assert_eq!(denials.len(), 2);
        assert_eq!(denials[0].index, 0);
        assert_eq!(denials[1].index, 1);
    }

    #[test]
    fn not_pushes_through_de_morgan() {
        let (denials, _) = translate(
            "CREATE ASSERTION a CHECK (NOT EXISTS (
                 SELECT * FROM orders WHERE NOT (o_totalprice >= 0 AND o_custkey > 0)))",
        );
        // NOT(A AND B) → NOT A OR NOT B → two denials.
        assert_eq!(denials.len(), 2);
        assert!(matches!(&denials[0].body[1], Literal::Cmp(CmpOp::Lt, _, _)));
        assert!(matches!(
            &denials[1].body[1],
            Literal::Cmp(CmpOp::LtEq, _, _)
        ));
    }
}
