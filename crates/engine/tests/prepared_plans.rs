//! Prepared-plan invalidation: a cached plan must never survive a catalog
//! change — CREATE/DROP TABLE, CREATE/DROP INDEX and capture changes all
//! move the catalog generation, and a stale plan would read wrong column
//! positions or dangling index ids.

use tintin_engine::{Database, TxOverlay, Value};
use tintin_sql as sql;

fn q(text: &str) -> sql::Query {
    sql::parse_query(text).unwrap()
}

fn plan_text(db: &Database, p: &tintin_engine::PreparedQuery) -> String {
    let resolved = p.resolve(db).unwrap();
    tintin_engine::query::explain(db, &resolved.plan)
}

#[test]
fn prepared_query_caches_across_data_changes() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        .unwrap();
    let p = db.prepare(&q("SELECT b FROM t WHERE a = 1")).unwrap();
    assert!(
        !p.resolve(&db).unwrap().recompiled,
        "prepare() warms the cache"
    );
    // DML, event staging, apply and undo are data changes: the plan stays.
    db.execute_sql("INSERT INTO t VALUES (1, 10), (2, 20)")
        .unwrap();
    assert!(!p.resolve(&db).unwrap().recompiled);
    db.enable_capture("t").unwrap(); // catalog change (event tables appear)
    assert!(p.resolve(&db).unwrap().recompiled);
    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap(); // captured: data only
    let log = db.apply_pending().unwrap();
    db.undo(log);
    db.truncate_events();
    assert!(!p.resolve(&db).unwrap().recompiled);
    let rs = db.query_prepared(&p).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(10));
}

#[test]
fn create_index_invalidates_and_upgrades_scan_to_probe() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        .unwrap();
    let p = db.prepare(&q("SELECT a FROM t WHERE b = 5")).unwrap();
    assert!(plan_text(&db, &p).contains("Scan t"), "no index on b yet");
    db.execute_sql("CREATE INDEX t_b ON t (b)").unwrap();
    let resolved = p.resolve(&db).unwrap();
    assert!(resolved.recompiled, "CREATE INDEX must invalidate the plan");
    let text = tintin_engine::query::explain(&db, &resolved.plan);
    assert!(
        text.contains("Probe t"),
        "recompiled plan probes t_b: {text}"
    );
}

#[test]
fn drop_index_reverts_probe_to_scan() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT);
         CREATE INDEX t_b ON t (b);
         INSERT INTO t VALUES (1, 5), (2, 6);",
    )
    .unwrap();
    let p = db.prepare(&q("SELECT a FROM t WHERE b = 5")).unwrap();
    assert!(plan_text(&db, &p).contains("Probe t"));
    db.execute_sql("DROP INDEX t_b ON t").unwrap();
    let resolved = p.resolve(&db).unwrap();
    assert!(resolved.recompiled, "DROP INDEX must invalidate the plan");
    let text = tintin_engine::query::explain(&db, &resolved.plan);
    assert!(text.contains("Scan t"), "plan falls back to a scan: {text}");
    // The stale plan's index id would now be dangling — the recompiled one
    // still answers correctly.
    let rs = db.query_prepared(&p).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn drop_index_refuses_constraint_indexes() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT);
         CREATE UNIQUE INDEX t_b ON t (b);",
    )
    .unwrap();
    assert!(db.execute_sql("DROP INDEX t_pkey ON t").is_err());
    assert!(db.execute_sql("DROP INDEX t_b ON t").is_err());
    assert!(db.execute_sql("DROP INDEX nope ON t").is_err());
}

#[test]
fn drop_and_recreate_table_never_runs_a_stale_plan() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT);
         INSERT INTO t VALUES (1, 10);",
    )
    .unwrap();
    let p = db.prepare(&q("SELECT b FROM t")).unwrap();
    assert_eq!(db.query_prepared(&p).unwrap().rows[0][0], Value::Int(10));
    // Recreate the table with the column order flipped: a stale plan would
    // project position 1 and return `a` instead of `b`.
    db.execute_sql(
        "DROP TABLE t;
         CREATE TABLE t (b INT, a INT PRIMARY KEY);
         INSERT INTO t VALUES (77, 1);",
    )
    .unwrap();
    let resolved = p.resolve(&db).unwrap();
    assert!(resolved.recompiled);
    let rs = db.query_prepared(&p).unwrap();
    assert_eq!(
        rs.rows[0][0],
        Value::Int(77),
        "b resolved against the new layout"
    );
    // Dropping the table entirely surfaces as an error, not a stale read.
    db.execute_sql("DROP TABLE t").unwrap();
    assert!(db.query_prepared(&p).is_err());
}

#[test]
fn clones_share_plans_until_their_catalogs_diverge() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
        .unwrap();
    let p = db.prepare(&q("SELECT a FROM t")).unwrap();
    let mut snapshot = db.clone();
    // Identical catalogs ⇒ same generation ⇒ the cached plan serves both.
    assert_eq!(db.catalog_generation(), snapshot.catalog_generation());
    assert!(!p.resolve(&snapshot).unwrap().recompiled);
    // DDL on the snapshot takes a globally unique generation: the plan
    // recompiles there, and stays cached for whichever database it was
    // resolved against last.
    snapshot.execute_sql("CREATE TABLE u (x INT)").unwrap();
    assert_ne!(db.catalog_generation(), snapshot.catalog_generation());
    assert!(p.resolve(&snapshot).unwrap().recompiled);
    assert!(
        p.resolve(&db).unwrap().recompiled,
        "cache now keyed to the snapshot"
    );
}

#[test]
fn prepared_execution_matches_adhoc_and_sees_overlays() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT);
         INSERT INTO t VALUES (1, 10), (2, 20);",
    )
    .unwrap();
    let query = q("SELECT a, b FROM t WHERE b >= 10 ORDER BY a");
    let p = db.prepare(&query).unwrap();
    assert_eq!(db.query_prepared(&p).unwrap(), db.query(&query).unwrap());
    // The overlay affects execution only, never the cached plan.
    let mut overlay = TxOverlay::new();
    let delta = db
        .plan_dml(
            &sql::parse_statement("INSERT INTO t VALUES (3, 30)").unwrap(),
            &overlay,
        )
        .unwrap();
    overlay.apply_delta(&delta);
    let rs = db.query_prepared_with_overlay(&p, Some(&overlay)).unwrap();
    assert_eq!(rs.len(), 3, "read-your-writes through the prepared plan");
    assert!(!p.resolve(&db).unwrap().recompiled);
    assert_eq!(
        db.query_prepared(&p).unwrap().len(),
        2,
        "overlay never leaks"
    );
}

#[test]
fn generation_moves_only_on_catalog_changes() {
    let mut db = Database::new();
    let g0 = db.catalog_generation();
    db.execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
        .unwrap();
    let g1 = db.catalog_generation();
    assert_ne!(g0, g1);
    db.execute_sql("INSERT INTO t VALUES (1); DELETE FROM t WHERE a = 1;")
        .unwrap();
    assert_eq!(db.catalog_generation(), g1, "DML is not a catalog change");
    db.execute_sql("CREATE VIEW v AS SELECT a FROM t").unwrap();
    let g2 = db.catalog_generation();
    assert_ne!(g1, g2);
    db.execute_sql("DROP VIEW v").unwrap();
    assert_ne!(db.catalog_generation(), g2);
    // DROP ... IF EXISTS of nothing changes nothing.
    let g3 = db.catalog_generation();
    db.execute_sql("DROP TABLE IF EXISTS nope").unwrap();
    assert_eq!(db.catalog_generation(), g3);
}
