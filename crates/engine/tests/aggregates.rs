//! Aggregate, GROUP BY / HAVING, and ORDER BY / LIMIT evaluation tests.

use tintin_engine::{Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT NOT NULL,
                              o_totalprice REAL NOT NULL);
         CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_linenumber INT NOT NULL,
                                l_quantity INT,
                                PRIMARY KEY (l_orderkey, l_linenumber));
         INSERT INTO orders VALUES (1, 10, 100.0), (2, 10, 50.0), (3, 20, 25.0);
         INSERT INTO lineitem VALUES (1, 1, 5), (1, 2, 7), (2, 1, 1), (3, 1, NULL);",
    )
    .unwrap();
    db
}

#[test]
fn global_count_star() {
    let rs = db().query_sql("SELECT COUNT(*) FROM lineitem").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(4));
    assert_eq!(rs.columns, vec!["count"]);
}

#[test]
fn count_column_ignores_nulls() {
    let rs = db()
        .query_sql("SELECT COUNT(l_quantity) AS n FROM lineitem")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3));
    assert_eq!(rs.columns, vec!["n"]);
}

#[test]
fn sum_avg_min_max() {
    let rs = db()
        .query_sql(
            "SELECT SUM(l_quantity), AVG(l_quantity), MIN(l_quantity), MAX(l_quantity)
             FROM lineitem",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(13));
    assert_eq!(rs.rows[0][1], Value::real(13.0 / 3.0));
    assert_eq!(rs.rows[0][2], Value::Int(1));
    assert_eq!(rs.rows[0][3], Value::Int(7));
}

#[test]
fn global_aggregate_on_empty_input_yields_one_row() {
    let mut d = Database::new();
    d.execute_sql("CREATE TABLE e (x INT)").unwrap();
    let rs = d
        .query_sql("SELECT COUNT(*), SUM(x), MIN(x) FROM e")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert_eq!(rs.rows[0][1], Value::Null);
    assert_eq!(rs.rows[0][2], Value::Null);
}

#[test]
fn group_by_with_keys_in_projection() {
    let rs = db()
        .query_sql(
            "SELECT o_custkey, COUNT(*) AS n, SUM(o_totalprice) AS total
             FROM orders GROUP BY o_custkey ORDER BY o_custkey",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(
        rs.rows[0].to_vec(),
        vec![Value::Int(10), Value::Int(2), Value::real(150.0)]
    );
    assert_eq!(
        rs.rows[1].to_vec(),
        vec![Value::Int(20), Value::Int(1), Value::real(25.0)]
    );
}

#[test]
fn having_filters_groups() {
    let rs = db()
        .query_sql(
            "SELECT l_orderkey, COUNT(*) AS n FROM lineitem
             GROUP BY l_orderkey HAVING COUNT(*) > 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
    assert_eq!(rs.rows[0][1], Value::Int(2));
}

#[test]
fn having_with_key_reference() {
    let rs = db()
        .query_sql(
            "SELECT o_custkey FROM orders GROUP BY o_custkey
             HAVING o_custkey > 15 AND COUNT(*) >= 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(20));
}

#[test]
fn count_distinct() {
    let rs = db()
        .query_sql("SELECT COUNT(DISTINCT o_custkey) FROM orders")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn aggregate_over_join() {
    let rs = db()
        .query_sql(
            "SELECT o.o_custkey, COUNT(*) AS lines
             FROM orders o, lineitem l WHERE l.l_orderkey = o.o_orderkey
             GROUP BY o.o_custkey ORDER BY lines DESC",
        )
        .unwrap();
    assert_eq!(rs.rows[0].to_vec(), vec![Value::Int(10), Value::Int(3)]);
    assert_eq!(rs.rows[1].to_vec(), vec![Value::Int(20), Value::Int(1)]);
}

#[test]
fn expression_over_aggregates() {
    let rs = db()
        .query_sql("SELECT MAX(l_quantity) - MIN(l_quantity) AS spread FROM lineitem")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(6));
}

#[test]
fn non_grouped_column_is_rejected() {
    let err = db()
        .query_sql("SELECT o_custkey, o_totalprice FROM orders GROUP BY o_custkey")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn unknown_function_rejected() {
    assert!(db()
        .query_sql("SELECT median(o_totalprice) FROM orders")
        .is_err());
}

#[test]
fn aggregate_outside_grouping_context_rejected() {
    assert!(db()
        .query_sql("SELECT * FROM orders WHERE COUNT(*) > 1")
        .is_err());
}

#[test]
fn order_by_name_position_and_desc() {
    let d = db();
    let by_name = d
        .query_sql("SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice")
        .unwrap();
    assert_eq!(by_name.rows[0][0], Value::Int(3));
    let by_pos = d
        .query_sql("SELECT o_orderkey, o_totalprice FROM orders ORDER BY 2 DESC")
        .unwrap();
    assert_eq!(by_pos.rows[0][0], Value::Int(1));
}

#[test]
fn order_by_multiple_keys() {
    let rs = db()
        .query_sql("SELECT o_custkey, o_orderkey FROM orders ORDER BY o_custkey DESC, o_orderkey")
        .unwrap();
    let keys: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| match r[1] {
            Value::Int(v) => v,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(keys, vec![3, 1, 2]);
}

#[test]
fn limit_truncates() {
    let rs = db()
        .query_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 2")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[1][0], Value::Int(2));
    let rs = db()
        .query_sql("SELECT o_orderkey FROM orders LIMIT 0")
        .unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn order_by_applies_after_union() {
    let rs = db()
        .query_sql(
            "SELECT o_orderkey AS k FROM orders WHERE o_custkey = 10
             UNION SELECT l_linenumber FROM lineitem WHERE l_orderkey = 1
             ORDER BY k DESC LIMIT 3",
        )
        .unwrap();
    let keys: Vec<Value> = rs.rows.iter().map(|r| r[0].clone()).collect();
    assert_eq!(keys, vec![Value::Int(2), Value::Int(1)]);
}

#[test]
fn in_subquery_over_aggregate() {
    // x IN (SELECT MAX(...)) — aggregate subqueries under IN.
    let rs = db()
        .query_sql(
            "SELECT o_orderkey FROM orders
             WHERE o_orderkey IN (SELECT MAX(l_orderkey) FROM lineitem)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(3));
}

#[test]
fn exists_over_grouped_subquery() {
    // Orders of customers having at least two orders.
    let rs = db()
        .query_sql(
            "SELECT o_orderkey FROM orders o WHERE EXISTS (
                 SELECT o_custkey FROM orders o2 WHERE o2.o_custkey = o.o_custkey
                 GROUP BY o_custkey HAVING COUNT(*) >= 2)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn correlated_aggregate_subquery_in_exists() {
    // HAVING referencing the outer row's key through correlation.
    let rs = db()
        .query_sql(
            "SELECT o_orderkey FROM orders o WHERE EXISTS (
                 SELECT l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey
                 GROUP BY l_orderkey HAVING COUNT(*) > 1)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn aggregate_views_work() {
    let mut d = db();
    d.execute_sql(
        "CREATE VIEW order_sizes AS SELECT l_orderkey AS k, COUNT(*) AS n
         FROM lineitem GROUP BY l_orderkey",
    )
    .unwrap();
    let rs = d
        .query_sql("SELECT k FROM order_sizes WHERE n > 1")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn min_max_over_strings_work_sum_errors() {
    let mut d = Database::new();
    d.execute_sql("CREATE TABLE s (name TEXT); INSERT INTO s VALUES ('b'), ('a');")
        .unwrap();
    let rs = d.query_sql("SELECT MIN(name), MAX(name) FROM s").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("a"));
    assert_eq!(rs.rows[0][1], Value::str("b"));
    assert!(d.query_sql("SELECT SUM(name) FROM s").is_err());
}
