//! End-to-end query evaluation tests for the engine: SQL text in, rows out.

use tintin_engine::{Database, StatementResult, Truth, Value};

fn db_orders() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_totalprice REAL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL,
             l_linenumber INT NOT NULL,
             l_quantity INT,
             PRIMARY KEY (l_orderkey, l_linenumber),
             FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey));
         CREATE INDEX li_ok ON lineitem (l_orderkey);
         INSERT INTO orders VALUES (1, 10, 100.0), (2, 10, 50.5), (3, 20, 0.0);
         INSERT INTO lineitem VALUES (1, 1, 5), (1, 2, 7), (2, 1, 1);",
    )
    .unwrap();
    db
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .query_sql(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn select_star_projection_order() {
    let db = db_orders();
    let rs = db
        .query_sql("SELECT * FROM orders WHERE o_orderkey = 2")
        .unwrap();
    assert_eq!(rs.columns, vec!["o_orderkey", "o_custkey", "o_totalprice"]);
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][2], Value::real(50.5));
}

#[test]
fn filter_with_comparisons() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 10.0"
        ),
        vec![1, 2]
    );
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_totalprice <= 50.5"
        ),
        vec![2, 3]
    );
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_custkey = 10 AND o_totalprice < 60"
        ),
        vec![2]
    );
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_custkey = 20 OR o_totalprice = 100.0"
        ),
        vec![1, 3]
    );
}

#[test]
fn cross_join_counts() {
    let db = db_orders();
    let rs = db
        .query_sql("SELECT o.o_orderkey, l.l_linenumber FROM orders o, lineitem l")
        .unwrap();
    assert_eq!(rs.rows.len(), 9);
}

#[test]
fn equi_join_via_where_and_join_on() {
    let db = db_orders();
    let a = ints(&db, "SELECT l.l_quantity FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND o.o_custkey = 10");
    let b = ints(&db, "SELECT l.l_quantity FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE o.o_custkey = 10");
    assert_eq!(a, vec![1, 5, 7]);
    assert_eq!(a, b);
}

#[test]
fn exists_and_not_exists_correlated() {
    let db = db_orders();
    assert_eq!(
        ints(&db, "SELECT o_orderkey FROM orders o WHERE EXISTS (SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)"),
        vec![1, 2]
    );
    // Order 3 has no line items — the paper's running example.
    assert_eq!(
        ints(&db, "SELECT o_orderkey FROM orders o WHERE NOT EXISTS (SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)"),
        vec![3]
    );
}

#[test]
fn exists_over_union_subquery() {
    let db = db_orders();
    // EXISTS over a UNION body — the shape tintin-sqlgen emits for aux
    // predicates.
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders o WHERE EXISTS (
                 SELECT l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 6
                 UNION
                 SELECT l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity < 2)"
        ),
        vec![1, 2]
    );
}

#[test]
fn nested_not_exists_two_levels() {
    let db = db_orders();
    // Customers (via orders) all of whose orders have line items:
    // orders o such that NOT EXISTS an order of the same customer without
    // line items.
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders o WHERE NOT EXISTS (
                 SELECT * FROM orders o2
                 WHERE o2.o_custkey = o.o_custkey AND NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o2.o_orderkey))"
        ),
        vec![1, 2]
    );
}

#[test]
fn in_subquery_basic() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem)"
        ),
        vec![1, 2]
    );
    assert_eq!(
        ints(&db, "SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN (SELECT l_orderkey FROM lineitem)"),
        vec![3]
    );
}

#[test]
fn row_in_subquery() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT l_quantity FROM lineitem WHERE (l_orderkey, l_linenumber) IN (SELECT 1, 2 FROM orders)"
        ),
        vec![7]
    );
}

#[test]
fn not_in_with_null_in_subquery_is_empty() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (1), (2);
         INSERT INTO b VALUES (2), (NULL);",
    )
    .unwrap();
    // 1 NOT IN (2, NULL) is Unknown; 2 NOT IN (...) is False — empty result,
    // the classic SQL NOT IN + NULL trap.
    assert_eq!(
        ints(&db, "SELECT x FROM a WHERE x NOT IN (SELECT y FROM b)"),
        Vec::<i64>::new()
    );
    // IN keeps the definite match.
    assert_eq!(
        ints(&db, "SELECT x FROM a WHERE x IN (SELECT y FROM b)"),
        vec![2]
    );
}

#[test]
fn null_probe_in_empty_subquery_is_false_not_unknown() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (NULL);",
    )
    .unwrap();
    // NULL IN (empty) = FALSE, therefore NOT IN (empty) = TRUE.
    assert_eq!(
        db.query_sql("SELECT x FROM a WHERE x NOT IN (SELECT y FROM b)")
            .unwrap()
            .rows
            .len(),
        1
    );
}

#[test]
fn in_list_semantics() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_orderkey IN (1, 3, 99)"
        ),
        vec![1, 3]
    );
    assert_eq!(
        ints(
            &db,
            "SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN (1, 3)"
        ),
        vec![2]
    );
}

#[test]
fn union_dedup_and_union_all() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT o_custkey FROM orders UNION SELECT o_custkey FROM orders"
        ),
        vec![10, 20]
    );
    assert_eq!(
        ints(
            &db,
            "SELECT o_custkey FROM orders UNION ALL SELECT o_custkey FROM orders"
        )
        .len(),
        6
    );
}

#[test]
fn distinct_dedups() {
    let db = db_orders();
    assert_eq!(
        ints(&db, "SELECT DISTINCT o_custkey FROM orders"),
        vec![10, 20]
    );
    assert_eq!(ints(&db, "SELECT o_custkey FROM orders").len(), 3);
}

#[test]
fn derived_table_in_from() {
    let db = db_orders();
    assert_eq!(
        ints(
            &db,
            "SELECT big.o_orderkey FROM (SELECT o_orderkey FROM orders WHERE o_totalprice > 10.0) AS big
             WHERE big.o_orderkey < 2"
        ),
        vec![1]
    );
}

#[test]
fn views_compose() {
    let mut db = db_orders();
    db.execute_sql("CREATE VIEW expensive AS SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice >= 50.0")
        .unwrap();
    db.execute_sql("CREATE VIEW expensive_keys AS SELECT o_orderkey FROM expensive")
        .unwrap();
    assert_eq!(
        ints(&db, "SELECT o_orderkey FROM expensive_keys"),
        vec![1, 2]
    );
    // Views joined with base tables.
    assert_eq!(
        ints(
            &db,
            "SELECT l.l_quantity FROM expensive e, lineitem l WHERE l.l_orderkey = e.o_orderkey"
        ),
        vec![1, 5, 7]
    );
}

#[test]
fn three_valued_logic_in_where() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, NULL), (2, 5);")
        .unwrap();
    // NULL comparisons drop rows.
    assert_eq!(ints(&db, "SELECT a FROM t WHERE b > 0"), vec![2]);
    assert_eq!(ints(&db, "SELECT a FROM t WHERE b IS NULL"), vec![1]);
    assert_eq!(ints(&db, "SELECT a FROM t WHERE b IS NOT NULL"), vec![2]);
    // NOT (NULL > 0) is still unknown.
    assert_eq!(
        ints(&db, "SELECT a FROM t WHERE NOT (b > 0)"),
        Vec::<i64>::new()
    );
    // OR rescues unknown.
    assert_eq!(
        ints(&db, "SELECT a FROM t WHERE b > 0 OR a = 1"),
        vec![1, 2]
    );
}

#[test]
fn arithmetic_in_projection_and_where() {
    let db = db_orders();
    let rs = db
        .query_sql("SELECT o_orderkey + 100 AS k FROM orders WHERE o_orderkey * 2 = 4")
        .unwrap();
    assert_eq!(rs.columns, vec!["k"]);
    assert_eq!(rs.rows[0][0], Value::Int(102));
}

#[test]
fn division_by_zero_errors() {
    let db = db_orders();
    assert!(db.query_sql("SELECT o_orderkey / 0 FROM orders").is_err());
}

#[test]
fn ambiguous_column_is_rejected() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE a (x INT); CREATE TABLE b (x INT);")
        .unwrap();
    assert!(db.query_sql("SELECT x FROM a, b").is_err());
}

#[test]
fn unknown_table_and_column_errors() {
    let db = db_orders();
    assert!(db.query_sql("SELECT * FROM nonexistent").is_err());
    assert!(db.query_sql("SELECT bogus FROM orders").is_err());
    assert!(db.query_sql("SELECT o.bogus FROM orders o").is_err());
    assert!(db.query_sql("SELECT z.o_orderkey FROM orders o").is_err());
}

#[test]
fn qualified_wildcard() {
    let db = db_orders();
    let rs = db
        .query_sql("SELECT l.* FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND o.o_orderkey = 1")
        .unwrap();
    assert_eq!(rs.columns, vec!["l_orderkey", "l_linenumber", "l_quantity"]);
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn event_capture_redirects_dml() {
    let mut db = db_orders();
    db.enable_capture("orders").unwrap();
    db.enable_capture("lineitem").unwrap();

    db.execute_sql("INSERT INTO orders VALUES (4, 30, 10.0)")
        .unwrap();
    db.execute_sql("DELETE FROM lineitem WHERE l_orderkey = 1")
        .unwrap();

    // Base tables unchanged.
    assert_eq!(db.table("orders").unwrap().len(), 3);
    assert_eq!(db.table("lineitem").unwrap().len(), 3);
    // Events recorded.
    assert_eq!(db.table("ins_orders").unwrap().len(), 1);
    assert_eq!(db.table("del_lineitem").unwrap().len(), 2);
    assert_eq!(db.pending_counts(), (1, 2));

    // Events are queryable like tables (TINTIN's views rely on this).
    assert_eq!(ints(&db, "SELECT o_orderkey FROM ins_orders"), vec![4]);

    // Apply and verify.
    let log = db.apply_pending().unwrap();
    assert_eq!(db.table("orders").unwrap().len(), 4);
    assert_eq!(db.table("lineitem").unwrap().len(), 1);

    // Undo restores exactly.
    db.undo(log);
    assert_eq!(db.table("orders").unwrap().len(), 3);
    assert_eq!(db.table("lineitem").unwrap().len(), 3);
    assert_eq!(
        ints(
            &db,
            "SELECT l_linenumber FROM lineitem WHERE l_orderkey = 1"
        ),
        vec![1, 2]
    );

    db.truncate_events();
    assert_eq!(db.pending_counts(), (0, 0));
}

#[test]
fn capture_validates_against_base_schema() {
    let mut db = db_orders();
    db.enable_capture("orders").unwrap();
    // NOT NULL violation caught at capture time.
    assert!(db
        .execute_sql("INSERT INTO orders VALUES (NULL, 1, 1.0)")
        .is_err());
    // Arity mismatch too.
    assert!(db.execute_sql("INSERT INTO orders VALUES (9)").is_err());
}

#[test]
fn normalization_cancels_and_dedups() {
    let mut db = db_orders();
    db.enable_capture("orders").unwrap();
    // Delete order 1 then re-insert the identical row; also insert a brand
    // new order twice; also delete order 2 twice (same predicate re-run).
    db.execute_sql("DELETE FROM orders WHERE o_orderkey = 1")
        .unwrap();
    db.execute_sql("INSERT INTO orders VALUES (1, 10, 100.0)")
        .unwrap();
    db.execute_sql("INSERT INTO orders VALUES (7, 70, 7.0), (7, 70, 7.0)")
        .unwrap();
    db.execute_sql("DELETE FROM orders WHERE o_orderkey = 2")
        .unwrap();
    db.execute_sql("DELETE FROM orders WHERE o_orderkey = 2")
        .unwrap();

    let report = db.normalize_events().unwrap();
    assert_eq!(report.dup_ins, 1, "duplicate insert of order 7");
    assert_eq!(report.cancelled, 1, "delete+reinsert of order 1 cancels");
    // After normalization: ins = {7}, del = {2}.
    assert_eq!(ints(&db, "SELECT o_orderkey FROM ins_orders"), vec![7]);
    assert_eq!(ints(&db, "SELECT o_orderkey FROM del_orders"), vec![2]);

    let _ = db.apply_pending().unwrap();
    assert_eq!(ints(&db, "SELECT o_orderkey FROM orders"), vec![1, 3, 7]);
}

#[test]
fn apply_rolls_back_on_pk_conflict() {
    let mut db = db_orders();
    db.enable_capture("orders").unwrap();
    // Conflicting insert (order 1 exists with different attributes).
    db.execute_sql("INSERT INTO orders VALUES (1, 99, 9.9)")
        .unwrap();
    db.execute_sql("INSERT INTO orders VALUES (5, 50, 5.0)")
        .unwrap();
    let err = db.apply_pending().unwrap_err();
    assert!(matches!(
        err,
        tintin_engine::EngineError::UniqueViolation { .. }
    ));
    // Rollback left the base table untouched.
    assert_eq!(db.table("orders").unwrap().len(), 3);
    assert_eq!(
        ints(&db, "SELECT o_custkey FROM orders WHERE o_orderkey = 1"),
        vec![10]
    );
}

#[test]
fn delete_with_correlated_subquery_predicate() {
    let mut db = db_orders();
    // Delete orders without line items (order 3).
    let res = db
        .execute_sql(
            "DELETE FROM orders o WHERE NOT EXISTS (SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        )
        .unwrap();
    assert_eq!(res[0], StatementResult::RowsAffected(1));
    assert_eq!(ints(&db, "SELECT o_orderkey FROM orders"), vec![1, 2]);
}

#[test]
fn insert_select_copies_rows() {
    let mut db = db_orders();
    db.execute_sql("CREATE TABLE archive (k INT, c INT, p REAL)")
        .unwrap();
    db.execute_sql("INSERT INTO archive SELECT * FROM orders WHERE o_custkey = 10")
        .unwrap();
    assert_eq!(ints(&db, "SELECT k FROM archive"), vec![1, 2]);
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let mut db = db_orders();
    db.execute_sql("INSERT INTO orders (o_orderkey) VALUES (9)")
        .unwrap();
    let rs = db
        .query_sql("SELECT o_custkey FROM orders WHERE o_orderkey = 9")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Null);
}

#[test]
fn check_constraint_enforced() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE q (v INT, CHECK (v > 0))")
        .unwrap();
    assert!(db.execute_sql("INSERT INTO q VALUES (5)").is_ok());
    assert!(db.execute_sql("INSERT INTO q VALUES (0)").is_err());
    // NULL passes CHECK (unknown is not false).
    assert!(db.execute_sql("INSERT INTO q VALUES (NULL)").is_ok());
}

#[test]
fn row_predicate_helper_matches_sql() {
    use tintin_engine::query::{compile_row_predicate, eval_row_predicate};
    let db = db_orders();
    let pred = tintin_sql::parse_expr("o_totalprice > 60.0").unwrap();
    let compiled = compile_row_predicate(&db, "orders", "orders", &pred).unwrap();
    let t = db.table("orders").unwrap();
    let mut hits = 0;
    let mut ctx = tintin_engine::ExecCtx::new(&db);
    for (_, row) in t.scan() {
        if eval_row_predicate(&compiled, row, &mut ctx).unwrap() == Truth::True {
            hits += 1;
        }
    }
    assert_eq!(hits, 1);
}

#[test]
fn select_without_from() {
    let db = Database::new();
    let rs = db.query_sql("SELECT 1 AS one, 'x' AS s").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
    assert_eq!(rs.rows[0][1], Value::str("x"));
}

#[test]
fn union_width_mismatch_rejected() {
    let db = db_orders();
    assert!(db
        .query_sql(
            "SELECT o_orderkey FROM orders UNION SELECT l_orderkey, l_linenumber FROM lineitem"
        )
        .is_err());
}

#[test]
fn truncate_table_statement() {
    let mut db = db_orders();
    db.execute_sql("TRUNCATE TABLE lineitem").unwrap();
    assert_eq!(db.table("lineitem").unwrap().len(), 0);
}

#[test]
fn drop_table_and_view() {
    let mut db = db_orders();
    db.execute_sql("CREATE VIEW v AS SELECT * FROM orders")
        .unwrap();
    db.execute_sql("DROP VIEW v").unwrap();
    assert!(db.query_sql("SELECT * FROM v").is_err());
    db.execute_sql("DROP TABLE lineitem").unwrap();
    assert!(db.query_sql("SELECT * FROM lineitem").is_err());
    assert!(db.execute_sql("DROP TABLE lineitem").is_err());
    db.execute_sql("DROP TABLE IF EXISTS lineitem").unwrap();
}

#[test]
fn disable_capture_drops_event_tables() {
    let mut db = db_orders();
    db.enable_capture("orders").unwrap();
    assert!(db.table("ins_orders").is_some());
    db.disable_capture("orders").unwrap();
    assert!(db.table("ins_orders").is_none());
    // DML goes straight to the base table again.
    db.execute_sql("INSERT INTO orders VALUES (8, 1, 1.0)")
        .unwrap();
    assert_eq!(db.table("orders").unwrap().len(), 4);
}

#[test]
fn assertion_ddl_is_rejected_by_raw_engine() {
    let mut db = db_orders();
    let err = db
        .execute_sql("CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM orders))")
        .unwrap_err();
    assert!(matches!(err, tintin_engine::EngineError::Unsupported(_)));
}

#[test]
fn self_join_with_aliases() {
    let db = db_orders();
    // Pairs of distinct orders of the same customer.
    let rs = db
        .query_sql(
            "SELECT a.o_orderkey, b.o_orderkey FROM orders a, orders b
             WHERE a.o_custkey = b.o_custkey AND a.o_orderkey < b.o_orderkey",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
    assert_eq!(rs.rows[0][1], Value::Int(2));
}

#[test]
fn large_indexed_join_is_fast() {
    // Smoke test that index probes are used: 20k lineitems joined to 5k
    // orders completes instantly even in debug builds (a nested-loop scan
    // would be 1e8 comparisons).
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
         CREATE TABLE lineitem (l_orderkey INT, l_linenumber INT,
             PRIMARY KEY (l_orderkey, l_linenumber));
         CREATE INDEX li_ok ON lineitem (l_orderkey);",
    )
    .unwrap();
    let orders: Vec<Vec<Value>> = (0..5000).map(|i| vec![Value::Int(i)]).collect();
    db.insert_direct("orders", orders).unwrap();
    let lines: Vec<Vec<Value>> = (0..20000)
        .map(|i| vec![Value::Int(i % 5000), Value::Int(i / 5000)])
        .collect();
    db.insert_direct("lineitem", lines).unwrap();
    let t0 = std::time::Instant::now();
    let rs = db
        .query_sql(
            "SELECT o.o_orderkey FROM orders o WHERE NOT EXISTS (
                 SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 0);
    assert!(
        t0.elapsed().as_secs_f64() < 2.0,
        "correlated NOT EXISTS should be index-accelerated, took {:?}",
        t0.elapsed()
    );
}
