//! Engine-level transaction and savepoint semantics: the undo-log savepoint
//! stack must restore base tables *and* event tables exactly.

use tintin_engine::{Database, EngineError, Value};

fn db_with_data() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT);
         INSERT INTO t VALUES (1, 10), (2, 20);",
    )
    .unwrap();
    db
}

fn rows_of(db: &Database, table: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = db
        .table(table)
        .unwrap()
        .scan()
        .map(|(_, r)| r.to_vec())
        .collect();
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

#[test]
fn rollback_restores_uncaptured_tables() {
    let mut db = db_with_data();
    let before = rows_of(&db, "t");
    db.begin_transaction().unwrap();
    db.execute_sql(
        "INSERT INTO t VALUES (3, 30);
         DELETE FROM t WHERE a = 1;
         UPDATE t SET b = 99 WHERE a = 2;",
    )
    .unwrap();
    assert_ne!(rows_of(&db, "t"), before);
    db.rollback_transaction().unwrap();
    assert_eq!(rows_of(&db, "t"), before);
    assert!(!db.in_transaction());
}

#[test]
fn rollback_restores_event_tables() {
    let mut db = db_with_data();
    db.enable_capture("t").unwrap();
    db.begin_transaction().unwrap();
    db.execute_sql("INSERT INTO t VALUES (3, 30); DELETE FROM t WHERE a = 1;")
        .unwrap();
    assert_eq!(db.pending_counts(), (1, 1));
    db.rollback_transaction().unwrap();
    assert_eq!(db.pending_counts(), (0, 0));
    // Base table was never touched by captured DML.
    assert_eq!(db.table("t").unwrap().len(), 2);
}

#[test]
fn savepoint_stack_nested_rollback() {
    let mut db = db_with_data();
    db.enable_capture("t").unwrap();
    db.begin_transaction().unwrap();

    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
    db.create_savepoint("s1").unwrap();
    db.execute_sql("INSERT INTO t VALUES (4, 40)").unwrap();
    db.create_savepoint("s2").unwrap();
    db.execute_sql("INSERT INTO t VALUES (5, 50)").unwrap();
    assert_eq!(db.pending_counts(), (3, 0));
    assert_eq!(
        db.savepoint_names(),
        vec!["s1".to_string(), "s2".to_string()]
    );

    // Roll back to s1: events after it vanish, s2 is discarded, s1 stays.
    db.rollback_to_savepoint("s1").unwrap();
    assert_eq!(db.pending_counts(), (1, 0));
    assert_eq!(db.savepoint_names(), vec!["s1".to_string()]);

    // s1 is replayable: new work after it can be rolled back again.
    db.execute_sql("INSERT INTO t VALUES (6, 60)").unwrap();
    assert_eq!(db.pending_counts(), (2, 0));
    db.rollback_to_savepoint("s1").unwrap();
    assert_eq!(db.pending_counts(), (1, 0));

    db.rollback_transaction().unwrap();
    assert_eq!(db.pending_counts(), (0, 0));
}

#[test]
fn release_merges_into_enclosing_scope() {
    let mut db = db_with_data();
    db.begin_transaction().unwrap();
    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
    db.create_savepoint("s1").unwrap();
    db.execute_sql("INSERT INTO t VALUES (4, 40)").unwrap();
    db.release_savepoint("s1").unwrap();
    assert!(db.savepoint_names().is_empty());
    assert!(db.rollback_to_savepoint("s1").is_err());
    // The released savepoint's changes survive until the tx ends.
    assert_eq!(db.table("t").unwrap().len(), 4);
    db.rollback_transaction().unwrap();
    assert_eq!(db.table("t").unwrap().len(), 2);
}

#[test]
fn savepoint_name_reuse_moves_the_savepoint() {
    let mut db = db_with_data();
    db.begin_transaction().unwrap();
    db.create_savepoint("s").unwrap();
    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
    db.create_savepoint("s").unwrap(); // moved here
    db.execute_sql("INSERT INTO t VALUES (4, 40)").unwrap();
    db.rollback_to_savepoint("s").unwrap();
    // Only the insert after the *moved* savepoint is undone.
    assert_eq!(db.table("t").unwrap().len(), 3);
    db.rollback_transaction().unwrap();
    assert_eq!(db.table("t").unwrap().len(), 2);
}

#[test]
fn commit_keeps_changes_and_closes() {
    let mut db = db_with_data();
    db.begin_transaction().unwrap();
    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
    db.commit_transaction().unwrap();
    assert!(!db.in_transaction());
    assert_eq!(db.table("t").unwrap().len(), 3);
    // The undo log is gone: a fresh rollback is an error.
    assert!(matches!(
        db.rollback_transaction(),
        Err(EngineError::Transaction(_))
    ));
}

#[test]
fn update_inside_transaction_rolls_back() {
    let mut db = db_with_data();
    db.begin_transaction().unwrap();
    // Key-shifting update exercises the two-phase apply + undo log.
    db.execute_sql("UPDATE t SET a = a + 10").unwrap();
    assert!(db
        .table("t")
        .unwrap()
        .scan()
        .all(|(_, r)| r[0] >= Value::Int(11)));
    db.rollback_transaction().unwrap();
    let mut keys: Vec<Value> = db
        .table("t")
        .unwrap()
        .scan()
        .map(|(_, r)| r[0].clone())
        .collect();
    keys.sort_by_key(|v| format!("{v}"));
    assert_eq!(keys, vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn failed_statement_then_rollback_still_restores() {
    let mut db = db_with_data();
    db.begin_transaction().unwrap();
    db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
    // This UPDATE collides on the primary key and self-compensates…
    assert!(db.execute_sql("UPDATE t SET a = 1 WHERE a = 3").is_err());
    // …after which a full rollback must still restore the initial state,
    // even though the compensation reassigned row ids.
    db.rollback_transaction().unwrap();
    assert_eq!(db.table("t").unwrap().len(), 2);
    assert!(db
        .table("t")
        .unwrap()
        .scan()
        .all(|(_, r)| r[0] == Value::Int(1) || r[0] == Value::Int(2)));
}

#[test]
fn transaction_state_errors() {
    let mut db = db_with_data();
    assert!(matches!(
        db.commit_transaction(),
        Err(EngineError::Transaction(_))
    ));
    assert!(matches!(
        db.create_savepoint("s"),
        Err(EngineError::Transaction(_))
    ));
    db.begin_transaction().unwrap();
    assert!(matches!(
        db.begin_transaction(),
        Err(EngineError::Transaction(_))
    ));
    assert!(matches!(
        db.rollback_to_savepoint("nope"),
        Err(EngineError::NoSuchSavepoint(_))
    ));
    db.rollback_transaction().unwrap();
}

#[test]
fn engine_rejects_tx_statements_in_execute() {
    let mut db = db_with_data();
    let err = db.execute_sql("BEGIN").unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)));
}
