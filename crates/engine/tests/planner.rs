//! Planner-shape tests: verify the compiler picks the intended access paths
//! (hash-index probes vs scans), since the incremental-checking performance
//! claims rest on them.

use tintin_engine::query::{Access, CBody};
use tintin_engine::Database;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT NOT NULL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));
         CREATE INDEX o_cust ON orders (o_custkey);",
    )
    .unwrap();
    db
}

fn first_select(db: &Database, sql: &str) -> tintin_engine::query::CompiledSelect {
    let q = tintin_sql::parse_query(sql).unwrap();
    let compiled = db.compile(&q).unwrap();
    match &compiled.body {
        CBody::Select(s) => s.clone(),
        _ => panic!("expected single select"),
    }
}

#[test]
fn pk_equality_becomes_probe() {
    let s = first_select(&db(), "SELECT * FROM orders WHERE o_orderkey = 7");
    assert!(
        matches!(&s.sources[0].access, Access::Probe { table, .. } if table == "orders"),
        "{:?}",
        s.sources[0].access
    );
    // The probe consumed the conjunct: no residual filter.
    assert!(s.sources[0].filters.is_empty());
}

#[test]
fn secondary_index_chosen_for_non_key_equality() {
    let s = first_select(&db(), "SELECT * FROM orders WHERE o_custkey = 9");
    let Access::Probe { table, index, .. } = &s.sources[0].access else {
        panic!("expected probe, got {:?}", s.sources[0].access);
    };
    assert_eq!(table, "orders");
    let t = db();
    let t = t.table("orders").unwrap();
    assert_eq!(t.indexes()[*index].columns, vec![1]);
}

#[test]
fn range_predicate_stays_a_scan() {
    let s = first_select(&db(), "SELECT * FROM orders WHERE o_orderkey > 7");
    assert!(matches!(&s.sources[0].access, Access::Scan { .. }));
    assert_eq!(s.sources[0].filters.len(), 1);
}

#[test]
fn join_probes_second_table_by_fk_index() {
    let s = first_select(
        &db(),
        "SELECT * FROM orders o, lineitem l WHERE l.l_orderkey = o.o_orderkey",
    );
    assert!(matches!(&s.sources[0].access, Access::Scan { .. }));
    let Access::Probe { table, index, .. } = &s.sources[1].access else {
        panic!("expected probe on lineitem, got {:?}", s.sources[1].access);
    };
    assert_eq!(table, "lineitem");
    let d = db();
    let li = d.table("lineitem").unwrap();
    // The FK auto-index on l_orderkey, not the (l_orderkey, l_linenumber) PK.
    assert_eq!(li.indexes()[*index].columns, vec![0]);
}

#[test]
fn composite_pk_used_when_fully_bound() {
    let s = first_select(
        &db(),
        "SELECT * FROM lineitem WHERE l_orderkey = 1 AND l_linenumber = 2",
    );
    let Access::Probe { index, .. } = &s.sources[0].access else {
        panic!()
    };
    let d = db();
    let li = d.table("lineitem").unwrap();
    assert_eq!(li.indexes()[*index].columns.len(), 2, "composite PK chosen");
}

#[test]
fn correlated_exists_probes_inner_table() {
    let q = tintin_sql::parse_query(
        "SELECT * FROM orders o WHERE EXISTS (
             SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
    )
    .unwrap();
    let d = db();
    let compiled = d.compile(&q).unwrap();
    let CBody::Select(s) = &compiled.body else {
        panic!()
    };
    let tintin_engine::query::CExpr::Exists { branches, .. } = &s.sources[0].filters[0] else {
        panic!("expected EXISTS filter, got {:?}", s.sources[0].filters);
    };
    assert!(
        matches!(&branches[0].sources[0].access, Access::Probe { .. }),
        "correlated equality must become an index probe"
    );
}

#[test]
fn derived_table_with_equality_gets_mat_probe() {
    let s = first_select(
        &db(),
        "SELECT * FROM orders o, (SELECT l_orderkey AS k FROM lineitem) sub
         WHERE sub.k = o.o_orderkey",
    );
    assert!(
        matches!(&s.sources[1].access, Access::MatProbe { .. }),
        "{:?}",
        s.sources[1].access
    );
}

#[test]
fn constants_only_predicate_is_a_pre_filter() {
    let s = first_select(&db(), "SELECT * FROM orders WHERE 1 = 2");
    assert_eq!(s.pre_filters.len(), 1);
    // And evaluation returns nothing without touching the table.
    let d = db();
    let rs = d.query_sql("SELECT * FROM orders WHERE 1 = 2").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn probe_key_with_incompatible_constant_matches_nothing() {
    let mut d = db();
    d.execute_sql("INSERT INTO orders VALUES (1, 1)").unwrap();
    // 1.5 cannot be an INT key → empty, not an error.
    let rs = d
        .query_sql("SELECT * FROM orders WHERE o_orderkey = 1.5")
        .unwrap();
    assert!(rs.is_empty());
    // 1.0 narrows fine.
    let rs = d
        .query_sql("SELECT * FROM orders WHERE o_orderkey = 1.0")
        .unwrap();
    assert_eq!(rs.len(), 1);
}
