//! `UPDATE` statement tests: direct application, capture decomposition into
//! del+ins events, rollback on conflicts.

use tintin_engine::{Database, EngineError, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (k INT PRIMARY KEY, grp INT NOT NULL, val REAL);
         INSERT INTO t VALUES (1, 10, 1.5), (2, 10, 2.5), (3, 20, 3.5);",
    )
    .unwrap();
    db
}

fn vals(db: &Database, sql: &str) -> Vec<Value> {
    let mut rows: Vec<Value> = db
        .query_sql(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].clone())
        .collect();
    rows.sort();
    rows
}

#[test]
fn update_with_predicate() {
    let mut db = db();
    db.execute_sql("UPDATE t SET val = 9.0 WHERE grp = 10")
        .unwrap();
    assert_eq!(
        vals(&db, "SELECT val FROM t"),
        vec![Value::real(3.5), Value::real(9.0), Value::real(9.0)]
    );
}

#[test]
fn update_all_rows_without_predicate() {
    let mut db = db();
    db.execute_sql("UPDATE t SET grp = 0").unwrap();
    assert_eq!(vals(&db, "SELECT DISTINCT grp FROM t"), vec![Value::Int(0)]);
}

#[test]
fn update_expression_sees_old_row() {
    let mut db = db();
    db.execute_sql("UPDATE t SET val = val + 1.0, grp = grp * 2 WHERE k = 1")
        .unwrap();
    let rs = db.query_sql("SELECT grp, val FROM t WHERE k = 1").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(20));
    assert_eq!(rs.rows[0][1], Value::real(2.5));
}

#[test]
fn key_shifting_update_succeeds() {
    let mut db = db();
    // k := k + 10 must not conflict with itself.
    db.execute_sql("UPDATE t SET k = k + 10").unwrap();
    assert_eq!(
        vals(&db, "SELECT k FROM t"),
        vec![Value::Int(11), Value::Int(12), Value::Int(13)]
    );
}

#[test]
fn conflicting_update_rolls_back() {
    let mut db = db();
    // Collapsing all keys to 7 violates the PK on the second row.
    let err = db.execute_sql("UPDATE t SET k = 7").unwrap_err();
    assert!(matches!(err, EngineError::UniqueViolation { .. }));
    // Original table intact.
    assert_eq!(
        vals(&db, "SELECT k FROM t"),
        vec![Value::Int(1), Value::Int(2), Value::Int(3)]
    );
}

#[test]
fn update_violating_not_null_fails_cleanly() {
    let mut db = db();
    let err = db
        .execute_sql("UPDATE t SET grp = NULL WHERE k = 1")
        .unwrap_err();
    assert!(matches!(err, EngineError::NullViolation { .. }));
    assert_eq!(
        vals(&db, "SELECT grp FROM t WHERE k = 1"),
        vec![Value::Int(10)]
    );
}

#[test]
fn update_unknown_column_fails() {
    let mut db = db();
    assert!(matches!(
        db.execute_sql("UPDATE t SET nope = 1").unwrap_err(),
        EngineError::NoSuchColumn(_)
    ));
}

#[test]
fn update_same_column_twice_rejected() {
    let mut db = db();
    assert!(db.execute_sql("UPDATE t SET grp = 1, grp = 2").is_err());
}

#[test]
fn captured_update_records_del_and_ins_events() {
    let mut db = db();
    db.enable_capture("t").unwrap();
    let res = db
        .execute_sql("UPDATE t SET val = 0.0 WHERE grp = 10")
        .unwrap();
    assert_eq!(res[0], tintin_engine::StatementResult::RowsAffected(2));
    // Base unchanged; del has the old rows, ins the new ones.
    assert_eq!(
        vals(&db, "SELECT val FROM t WHERE grp = 10"),
        vec![Value::real(1.5), Value::real(2.5)]
    );
    assert_eq!(db.table("del_t").unwrap().len(), 2);
    assert_eq!(db.table("ins_t").unwrap().len(), 2);
    assert_eq!(
        vals(&db, "SELECT val FROM ins_t"),
        vec![Value::real(0.0), Value::real(0.0)]
    );

    // Applying the events realizes the update.
    db.normalize_events().unwrap();
    db.apply_pending().unwrap();
    assert_eq!(
        vals(&db, "SELECT val FROM t WHERE grp = 10"),
        vec![Value::real(0.0), Value::real(0.0)]
    );
}

#[test]
fn captured_noop_update_records_nothing() {
    let mut db = db();
    db.enable_capture("t").unwrap();
    db.execute_sql("UPDATE t SET grp = 10 WHERE grp = 10")
        .unwrap();
    assert_eq!(db.pending_counts(), (0, 0), "identity update is a no-op");
}

#[test]
fn update_with_correlated_subquery_predicate() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE a (x INT PRIMARY KEY);
         CREATE TABLE b (y INT PRIMARY KEY, flag INT NOT NULL);
         INSERT INTO a VALUES (1), (3);
         INSERT INTO b VALUES (1, 0), (2, 0), (3, 0);",
    )
    .unwrap();
    db.execute_sql("UPDATE b SET flag = 1 WHERE EXISTS (SELECT * FROM a WHERE a.x = b.y)")
        .unwrap();
    assert_eq!(
        vals(&db, "SELECT y FROM b WHERE flag = 1"),
        vec![Value::Int(1), Value::Int(3)]
    );
}

#[test]
fn update_roundtrips_through_printer() {
    let stmt = tintin_sql::parse_statement(
        "UPDATE t AS x SET val = val + 1.0, grp = 2 WHERE x.k IN (1, 2)",
    )
    .unwrap();
    let printed = stmt.to_string();
    let reparsed = tintin_sql::parse_statement(&printed).unwrap();
    assert_eq!(stmt, reparsed, "printed: {printed}");
}
