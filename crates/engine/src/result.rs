//! Query result sets.

use crate::value::Value;
use std::fmt;

/// Rows returned by a query, with column names.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Box<[Value]>>,
}

impl ResultSet {
    pub fn empty() -> Self {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sort rows for deterministic comparisons in tests.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }

    /// Single scalar convenience accessor (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

impl fmt::Display for ResultSet {
    /// Render as an aligned text table (used by the REPL example).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:<w$}", w = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "({} row{})",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rs = ResultSet {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::str("alpha")].into_boxed_slice(),
                vec![Value::Int(22), Value::str("b")].into_boxed_slice(),
            ],
        };
        let s = rs.to_string();
        assert!(s.contains("id | name"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn scalar_accessor() {
        let rs = ResultSet {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(7)].into_boxed_slice()],
        };
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
        assert_eq!(ResultSet::empty().scalar(), None);
    }
}
