//! Slotted in-memory table storage with hash indexes and row-version MVCC.
//!
//! Rows live in a slot vector with a free list, so `RowId`s are stable until
//! the row is physically removed. Every table keeps a unique index on its
//! primary key (if declared) plus any number of secondary indexes; rows whose
//! key columns contain NULL are not indexed (a NULL key can never match an
//! equality probe), and NULL-containing keys are exempt from uniqueness,
//! following SQL semantics.
//!
//! # Row versions
//!
//! Every stored row is a *version* stamped with a `(begin, end)` pair of
//! commit timestamps: `begin` is the commit that created it, `end` the commit
//! that deleted it ([`TS_LIVE`] while it is still live). A snapshot taken at
//! commit timestamp `s` observes exactly the versions with
//! `begin <= s && s < end`, so concurrent committers never disturb an open
//! snapshot — readers filter versions instead of taking locks.
//!
//! Two deletion flavours coexist:
//!
//! * [`Table::delete_row`] **physically** removes a version (index entries
//!   dropped, slot freed). This is the right tool for transient storage that
//!   no snapshot ever re-reads — event tables, undo compensation, bulk
//!   maintenance on an exclusively owned database.
//! * [`Table::delete_row_at`] **stamps** a live version dead at a commit
//!   timestamp. The version (and its index entries) stays behind for older
//!   snapshots until [`Table::gc`] prunes it once no live snapshot can see
//!   it. This is the MVCC commit path.
//!
//! Versions created by [`Table::insert`] carry `begin = 0` — visible to
//! every snapshot — which is what bootstrap loads and raw-engine writes
//! want; MVCC commits use [`Table::insert_at`] with their commit timestamp.

use crate::error::{EngineError, Result};
use crate::hash::FxHashMap;
use crate::schema::TableSchema;
use crate::value::{Row, Value};

/// Stable identifier of a row version within its table.
pub type RowId = u32;

/// Snapshot sentinel meaning "the latest committed state": visibility
/// degenerates to "the version is live" (its `end` stamp is [`TS_LIVE`]).
pub const TS_LATEST: u64 = u64::MAX;

/// The `end` stamp of a version that has not been deleted.
pub const TS_LIVE: u64 = u64::MAX;

/// One stored row version: the row plus its `(begin, end)` visibility
/// window.
#[derive(Debug, Clone)]
struct Version {
    row: Row,
    begin: u64,
    end: u64,
}

impl Version {
    /// Is this version visible to a snapshot taken at commit timestamp `s`?
    fn visible_at(&self, s: u64) -> bool {
        if s == TS_LATEST {
            self.end == TS_LIVE
        } else {
            self.begin <= s && s < self.end
        }
    }

    fn is_live(&self) -> bool {
        self.end == TS_LIVE
    }
}

/// A hash index over a fixed list of columns.
#[derive(Debug, Clone)]
pub struct HashIndex {
    pub name: String,
    pub columns: Vec<usize>,
    pub unique: bool,
    map: FxHashMap<Box<[Value]>, Vec<RowId>>,
}

impl HashIndex {
    fn new(name: String, columns: Vec<usize>, unique: bool) -> Self {
        HashIndex {
            name,
            columns,
            unique,
            map: FxHashMap::default(),
        }
    }

    /// Extract this index's key from a row; `None` if any key column is NULL.
    pub(crate) fn key_of(&self, row: &[Value]) -> Option<Box<[Value]>> {
        let mut key = Vec::with_capacity(self.columns.len());
        for &c in &self.columns {
            if row[c].is_null() {
                return None;
            }
            key.push(row[c].clone());
        }
        Some(key.into_boxed_slice())
    }

    /// Candidate row-version ids matching an exact key. The result may
    /// include versions no snapshot the caller cares about can see (dead
    /// versions awaiting GC); filter with [`Table::get`] /
    /// [`Table::get_at`].
    pub fn probe(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    fn insert(&mut self, key: Box<[Value]>, id: RowId) {
        self.map.entry(key).or_default().push(id);
    }

    fn remove(&mut self, key: &[Value], id: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            if let Some(pos) = v.iter().position(|&x| x == id) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

/// An in-memory table of row versions.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    slots: Vec<Option<Version>>,
    free: Vec<RowId>,
    live: usize,
    /// Versions stamped dead but not yet garbage-collected.
    dead: usize,
    /// Lower bound on the `end` stamps of retained dead versions
    /// ([`TS_LIVE`] when none). Lets [`Table::has_prunable`] answer "would
    /// a GC pass at this horizon free anything?" without scanning — so a
    /// horizon pinned by a long-lived snapshot doesn't trigger futile
    /// full-table sweeps. May be conservatively low (a physical
    /// [`Table::delete_row`] of the minimal dead version leaves it stale),
    /// which costs at most one empty sweep before [`Table::gc`] recomputes
    /// it exactly.
    min_dead_end: u64,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Create an empty table, building the PK index and one index per
    /// declared unique set.
    pub fn new(schema: TableSchema) -> Self {
        let mut t = Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            dead: 0,
            min_dead_end: TS_LIVE,
            indexes: Vec::new(),
        };
        if !t.schema.primary_key.is_empty() {
            t.indexes.push(HashIndex::new(
                format!("{}_pkey", t.schema.name),
                t.schema.primary_key.clone(),
                true,
            ));
        }
        for (i, cols) in t.schema.unique.iter().enumerate() {
            // Skip a unique set identical to the PK.
            if *cols == t.schema.primary_key {
                continue;
            }
            t.indexes.push(HashIndex::new(
                format!("{}_uniq{}", t.schema.name, i),
                cols.clone(),
                true,
            ));
        }
        t
    }

    /// Number of live rows (versions visible to the latest snapshot).
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `(live, dead)` version counts: live versions are visible to the
    /// latest snapshot, dead ones are retained only for older snapshots
    /// until [`Table::gc`] prunes them.
    pub fn version_counts(&self) -> (usize, usize) {
        (self.live, self.dead)
    }

    /// Number of rows visible to a snapshot taken at commit timestamp `s`.
    pub fn len_at(&self, s: u64) -> usize {
        if s == TS_LATEST {
            self.live
        } else {
            self.scan_at(s).count()
        }
    }

    /// Validate a row against the schema: arity, coercion to the column
    /// types, NOT NULL.
    pub fn validate(&self, values: Vec<Value>) -> Result<Row> {
        if values.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        let mut row = Vec::with_capacity(values.len());
        for (v, col) in values.into_iter().zip(&self.schema.columns) {
            if v.is_null() && col.not_null {
                return Err(EngineError::NullViolation {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            let coerced = v.clone().coerce_to(col.ty).ok_or_else(|| {
                EngineError::TypeError(format!(
                    "value {v} is not valid for column {}.{} of type {}",
                    self.schema.name, col.name, col.ty
                ))
            })?;
            row.push(coerced);
        }
        Ok(row.into_boxed_slice())
    }

    /// Insert a (validated or raw) row with `begin = 0` — visible to every
    /// snapshot. Values are validated here; returns the new version's id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        self.insert_at(values, 0)
    }

    /// Insert a row as a version beginning at commit timestamp `begin`:
    /// snapshots taken before `begin` never see it. Uniqueness is enforced
    /// against *live* versions only — dead versions sharing the key are
    /// history, not conflicts.
    pub fn insert_at(&mut self, values: Vec<Value>, begin: u64) -> Result<RowId> {
        let row = self.validate(values)?;
        // Uniqueness checks before any mutation.
        for ix in &self.indexes {
            if !ix.unique {
                continue;
            }
            if let Some(key) = ix.key_of(&row) {
                let conflict = ix.probe(&key).iter().any(|&id| {
                    self.slots[id as usize]
                        .as_ref()
                        .is_some_and(|v| v.is_live())
                });
                if conflict {
                    return Err(EngineError::UniqueViolation {
                        table: self.schema.name.clone(),
                        index: ix.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as RowId
            }
        };
        for ix in &mut self.indexes {
            if let Some(key) = ix.key_of(&row) {
                ix.insert(key, id);
            }
        }
        self.slots[id as usize] = Some(Version {
            row,
            begin,
            end: TS_LIVE,
        });
        self.live += 1;
        Ok(id)
    }

    /// Physically remove a version by id, returning its row. Index entries
    /// are dropped and the slot is freed immediately — older snapshots lose
    /// the version too, so this is only safe for storage no snapshot
    /// re-reads (event tables, undo compensation, exclusively owned
    /// databases). The MVCC commit path uses [`Table::delete_row_at`].
    pub fn delete_row(&mut self, id: RowId) -> Option<Row> {
        let version = self.slots.get_mut(id as usize)?.take()?;
        for ix in &mut self.indexes {
            if let Some(key) = ix.key_of(&version.row) {
                ix.remove(&key, id);
            }
        }
        self.free.push(id);
        if version.is_live() {
            self.live -= 1;
        } else {
            self.dead -= 1;
        }
        Some(version.row)
    }

    /// Stamp a *live* version dead at commit timestamp `end`: snapshots at
    /// or after `end` no longer see it, older snapshots still do. The
    /// version stays in the slot vector and the indexes until [`Table::gc`]
    /// prunes it. Returns the row, or `None` if `id` is absent or already
    /// dead.
    pub fn delete_row_at(&mut self, id: RowId, end: u64) -> Option<Row> {
        let version = self.slots.get_mut(id as usize)?.as_mut()?;
        if !version.is_live() {
            return None;
        }
        version.end = end;
        let row = version.row.clone();
        self.live -= 1;
        self.dead += 1;
        self.min_dead_end = self.min_dead_end.min(end);
        Some(row)
    }

    /// Reverse an un-published [`Table::delete_row_at`] stamp: a version
    /// with `end == ts` becomes live again. Compensation for a failed
    /// versioned apply — safe only while `ts` has not been published as a
    /// commit timestamp (no snapshot can reference it yet).
    pub(crate) fn unstamp_end(&mut self, ts: u64) -> usize {
        let mut n = 0;
        let mut min_dead = TS_LIVE;
        for v in self.slots.iter_mut().flatten() {
            if v.end == ts {
                v.end = TS_LIVE;
                self.live += 1;
                self.dead -= 1;
                n += 1;
            } else if !v.is_live() {
                min_dead = min_dead.min(v.end);
            }
        }
        // The full pass just happened anyway — make the bound exact.
        self.min_dead_end = min_dead;
        n
    }

    /// Physically remove every version with `begin == ts` (compensation for
    /// a failed versioned apply; see [`Table::unstamp_end`]).
    pub(crate) fn remove_begun_at(&mut self, ts: u64) -> usize {
        let ids: Vec<RowId> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().filter(|v| v.begin == ts).map(|_| i as RowId))
            .collect();
        for &id in &ids {
            self.delete_row(id);
        }
        ids.len()
    }

    /// Access a live row by version id (`None` for dead versions).
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots
            .get(id as usize)?
            .as_ref()
            .filter(|v| v.is_live())
            .map(|v| &v.row)
    }

    /// Access the row of version `id` if it is visible to a snapshot taken
    /// at commit timestamp `s` ([`TS_LATEST`] for the live state).
    pub fn get_at(&self, id: RowId, s: u64) -> Option<&Row> {
        self.slots
            .get(id as usize)?
            .as_ref()
            .filter(|v| v.visible_at(s))
            .map(|v| &v.row)
    }

    /// Iterate over live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.scan_at(TS_LATEST)
    }

    /// Iterate over the rows visible to a snapshot taken at commit
    /// timestamp `s` ([`TS_LATEST`] for the live state).
    pub fn scan_at(&self, s: u64) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots.iter().enumerate().filter_map(move |(i, slot)| {
            slot.as_ref()
                .filter(|v| v.visible_at(s))
                .map(|v| (i as RowId, &v.row))
        })
    }

    /// Remove all rows — *including* dead versions retained for older
    /// snapshots (`TRUNCATE` is not transactional).
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.dead = 0;
        self.min_dead_end = TS_LIVE;
        for ix in &mut self.indexes {
            ix.map.clear();
        }
    }

    /// Would [`Table::gc`] at `horizon` free anything? O(1): answered from
    /// the tracked lower bound on dead `end` stamps, so callers can skip
    /// futile full-table sweeps while a long-lived snapshot pins the
    /// horizon below every retained version.
    pub fn has_prunable(&self, horizon: u64) -> bool {
        self.dead > 0 && self.min_dead_end <= horizon
    }

    /// Garbage-collect versions no snapshot at or after `horizon` can see
    /// (those with `end <= horizon`): index entries are dropped and slots
    /// freed for reuse. `horizon` must be the oldest live snapshot
    /// timestamp (or the current commit timestamp when no snapshot is
    /// open). Returns the number of versions pruned.
    pub fn gc(&mut self, horizon: u64) -> usize {
        if !self.has_prunable(horizon) {
            return 0;
        }
        let mut ids: Vec<RowId> = Vec::new();
        let mut min_surviving_dead = TS_LIVE;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(v) = slot else { continue };
            if v.end <= horizon {
                ids.push(i as RowId);
            } else if !v.is_live() {
                min_surviving_dead = min_surviving_dead.min(v.end);
            }
        }
        for &id in &ids {
            self.delete_row(id);
        }
        // The sweep visited every version — make the bound exact again.
        self.min_dead_end = min_surviving_dead;
        ids.len()
    }

    /// The indexes of this table.
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// Create a secondary index (backfilling existing rows). Unique indexes
    /// fail if existing data violates uniqueness.
    pub fn create_index(&mut self, name: String, columns: Vec<usize>, unique: bool) -> Result<()> {
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(EngineError::InvalidDdl(format!(
                    "index column {c} out of range for table {}",
                    self.schema.name
                )));
            }
        }
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(EngineError::DuplicateObject(name));
        }
        // Backfill every version — dead ones included, so older snapshots
        // keep probing correctly — but uniqueness only conflicts between
        // two *live* versions.
        let mut ix = HashIndex::new(name, columns, unique);
        for (id, version) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as RowId, v)))
        {
            if let Some(key) = ix.key_of(&version.row) {
                if unique
                    && version.is_live()
                    && ix
                        .probe(&key)
                        .iter()
                        .any(|&p| self.slots[p as usize].as_ref().is_some_and(|v| v.is_live()))
                {
                    return Err(EngineError::UniqueViolation {
                        table: self.schema.name.clone(),
                        index: ix.name,
                        key: format_key(&key),
                    });
                }
                ix.insert(key, id);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop a secondary index by name. Unique indexes back constraint
    /// enforcement (primary keys, UNIQUE sets) and cannot be dropped.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.name == name)
            .ok_or_else(|| EngineError::NoSuchTable(format!("index '{name}'")))?;
        if self.indexes[pos].unique {
            return Err(EngineError::InvalidDdl(format!(
                "index '{name}' enforces a unique constraint and cannot be dropped"
            )));
        }
        // Order-preserving remove: slot 0 is reserved for the PK index
        // (`find_identical` relies on it) and swap_remove would move an
        // arbitrary index there. Note any removal shifts later positions,
        // so compiled plans holding index ids are only protected by the
        // catalog-generation bump in `Database::drop_index`.
        self.indexes.remove(pos);
        Ok(())
    }

    /// True if an index on exactly/subset of `eq_cols` exists; returns the
    /// best (longest-key) index whose columns are all contained in `eq_cols`.
    pub fn best_index(&self, eq_cols: &[usize]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, ix) in self.indexes.iter().enumerate() {
            if ix.columns.iter().all(|c| eq_cols.contains(c)) {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = &self.indexes[b];
                        ix.columns.len() > cur.columns.len()
                            || (ix.columns.len() == cur.columns.len() && ix.unique && !cur.unique)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Find a live row identical to `row` (NULLs compared as equal here —
    /// this is *identity*, not SQL equality; used by event normalization).
    pub fn find_identical(&self, row: &[Value]) -> Option<RowId> {
        self.find_identical_at(row, TS_LATEST)
    }

    /// [`Table::find_identical`] against the state a snapshot taken at
    /// commit timestamp `s` observes.
    pub fn find_identical_at(&self, row: &[Value], s: u64) -> Option<RowId> {
        // Use the PK index when the key is non-null.
        if let Some(ix) = self.indexes.first().filter(|ix| ix.unique) {
            if let Some(key) = ix.key_of(row) {
                for &id in ix.probe(&key) {
                    if self.get_at(id, s).is_some_and(|r| r.as_ref() == row) {
                        return Some(id);
                    }
                }
                return None;
            }
        }
        self.scan_at(s)
            .find(|(_, r)| r.as_ref() == row)
            .map(|(id, _)| id)
    }

    /// Every live version identical to `row` (set semantics: one deletion
    /// event removes all identical copies). Used by the versioned apply.
    pub fn find_identical_all(&self, row: &[Value]) -> Vec<RowId> {
        if let Some(ix) = self.indexes.first().filter(|ix| ix.unique) {
            if let Some(key) = ix.key_of(row) {
                return ix
                    .probe(&key)
                    .iter()
                    .copied()
                    .filter(|&id| self.get(id).is_some_and(|r| r.as_ref() == row))
                    .collect();
            }
        }
        self.scan()
            .filter(|(_, r)| r.as_ref() == row)
            .map(|(id, _)| id)
            .collect()
    }
}

pub(crate) fn format_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema2() -> TableSchema {
        let mut s = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "a".into(),
                    ty: DataType::Int,
                    not_null: true,
                },
                Column {
                    name: "b".into(),
                    ty: DataType::Text,
                    not_null: false,
                },
            ],
        );
        s.primary_key = vec![0];
        s
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[1], Value::str("x"));
        let row = t.delete_row(id).unwrap();
        assert_eq!(row[0], Value::Int(1));
        assert_eq!(t.len(), 0);
        assert!(t.get(id).is_none());
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut t = Table::new(schema2());
        let id1 = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.delete_row(id1);
        let id2 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(id1, id2, "slot should be reused");
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = Table::new(schema2());
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let err = t.insert(vec![Value::Int(1), Value::str("y")]).unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation { .. }));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = Table::new(schema2());
        let err = t.insert(vec![Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, EngineError::NullViolation { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema2());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    #[test]
    fn coercion_applied_on_insert() {
        let mut t = Table::new(schema2());
        // Real 2.0 narrows to Int for column a.
        let id = t.insert(vec![Value::real(2.0), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(2));
        // Real 2.5 does not.
        assert!(matches!(
            t.insert(vec![Value::real(2.5), Value::Null]),
            Err(EngineError::TypeError(_))
        ));
    }

    #[test]
    fn pk_index_probe() {
        let mut t = Table::new(schema2());
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::str(format!("r{i}"))])
                .unwrap();
        }
        let ix = &t.indexes()[0];
        let ids = ix.probe(&[Value::Int(42)]);
        assert_eq!(ids.len(), 1);
        assert_eq!(t.get(ids[0]).unwrap()[1], Value::str("r42"));
    }

    #[test]
    fn secondary_index_backfill_and_probe() {
        let mut t = Table::new(schema2());
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "e" } else { "o" }),
            ])
            .unwrap();
        }
        t.create_index("t_b".into(), vec![1], false).unwrap();
        let ix = t.indexes().iter().find(|ix| ix.name == "t_b").unwrap();
        assert_eq!(ix.probe(&[Value::str("e")]).len(), 5);
    }

    #[test]
    fn unique_index_creation_fails_on_duplicates() {
        let mut t = Table::new(schema2());
        t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("x")]).unwrap();
        assert!(t.create_index("u".into(), vec![1], true).is_err());
    }

    #[test]
    fn null_keys_not_indexed_and_exempt_from_unique() {
        let mut t = Table::new(schema2());
        t.create_index("u".into(), vec![1], true).unwrap();
        // Two NULLs in a unique column are fine.
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        let ix = t.indexes().iter().find(|ix| ix.name == "u").unwrap();
        assert!(ix.probe(&[Value::Null]).is_empty());
    }

    #[test]
    fn best_index_prefers_longest() {
        let mut s = schema2();
        s.unique = vec![];
        let mut t = Table::new(s);
        t.create_index("i_b".into(), vec![1], false).unwrap();
        t.create_index("i_ab".into(), vec![0, 1], false).unwrap();
        let best = t.best_index(&[0, 1]).unwrap();
        // PK (a) has 1 column, i_ab has 2 → i_ab wins.
        assert_eq!(t.indexes()[best].name, "i_ab");
        // Only b available → i_b.
        let best = t.best_index(&[1]).unwrap();
        assert_eq!(t.indexes()[best].name, "i_b");
        // Nothing → none.
        assert!(
            t.best_index(&[]).is_none()
                || t.indexes()[t.best_index(&[]).unwrap()].columns.is_empty()
        );
    }

    #[test]
    fn find_identical_uses_pk_and_compares_fully() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(
            t.find_identical(&[Value::Int(1), Value::str("x")]),
            Some(id)
        );
        assert_eq!(t.find_identical(&[Value::Int(1), Value::str("y")]), None);
        assert_eq!(t.find_identical(&[Value::Int(9), Value::str("x")]), None);
    }

    #[test]
    fn stamped_delete_keeps_old_snapshots_intact() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        // Deleted at commit 5: snapshots 0..5 still see it, 5.. don't.
        assert!(t.delete_row_at(id, 5).is_some());
        assert_eq!(t.len(), 0);
        assert_eq!(t.version_counts(), (0, 1));
        assert_eq!(t.get(id), None);
        assert!(t.get_at(id, 4).is_some());
        assert_eq!(t.get_at(id, 5), None);
        assert_eq!(t.scan_at(4).count(), 1);
        assert_eq!(t.scan_at(5).count(), 0);
        // Stamping an already-dead version is a no-op.
        assert!(t.delete_row_at(id, 9).is_none());
    }

    #[test]
    fn insert_at_invisible_to_older_snapshots() {
        let mut t = Table::new(schema2());
        t.insert_at(vec![Value::Int(1), Value::Null], 3).unwrap();
        assert_eq!(t.scan_at(2).count(), 0);
        assert_eq!(t.scan_at(3).count(), 1);
        assert_eq!(t.len(), 1, "latest sees live versions regardless of begin");
    }

    #[test]
    fn unique_ignores_dead_versions_and_gc_prunes_them() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("old")]).unwrap();
        t.delete_row_at(id, 2);
        // Same PK as the dead version: allowed (the key is free at latest).
        let id2 = t
            .insert_at(vec![Value::Int(1), Value::str("new")], 2)
            .unwrap();
        assert_ne!(id, id2);
        // Both versions share the PK index bucket until GC.
        assert_eq!(t.indexes()[0].probe(&[Value::Int(1)]).len(), 2);
        // A snapshot before the swap sees exactly the old row.
        assert_eq!(
            t.find_identical_at(&[Value::Int(1), Value::str("old")], 1),
            Some(id)
        );
        assert_eq!(t.find_identical(&[Value::Int(1), Value::str("old")]), None);
        // GC below the death stamp keeps it; at the stamp it goes.
        assert_eq!(t.gc(1), 0);
        assert_eq!(t.gc(2), 1);
        assert_eq!(t.version_counts(), (1, 0));
        assert_eq!(t.indexes()[0].probe(&[Value::Int(1)]).len(), 1);
        // The freed slot is reused.
        let id3 = t.insert(vec![Value::Int(9), Value::Null]).unwrap();
        assert_eq!(id3, id);
    }

    #[test]
    fn has_prunable_tracks_the_dead_end_bound() {
        let mut t = Table::new(schema2());
        assert!(!t.has_prunable(u64::MAX - 1));
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        t.delete_row_at(a, 5);
        t.delete_row_at(b, 3);
        // Horizon below every dead stamp: nothing prunable, gc is O(1).
        assert!(!t.has_prunable(2));
        assert_eq!(t.gc(2), 0);
        // Pruning the older version re-tightens the bound to the survivor.
        assert!(t.has_prunable(3));
        assert_eq!(t.gc(3), 1);
        assert!(!t.has_prunable(4));
        assert!(t.has_prunable(5));
        assert_eq!(t.gc(5), 1);
        assert!(!t.has_prunable(u64::MAX - 1));
    }

    #[test]
    fn unstamp_and_remove_begun_compensate_a_failed_apply() {
        let mut t = Table::new(schema2());
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.delete_row_at(a, 7);
        t.insert_at(vec![Value::Int(2), Value::Null], 7).unwrap();
        assert_eq!(t.unstamp_end(7), 1);
        assert_eq!(t.remove_begun_at(7), 1);
        assert_eq!(t.version_counts(), (1, 0));
        assert!(t.get(a).is_some());
    }

    #[test]
    fn secondary_index_backfills_dead_versions() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.delete_row_at(id, 3);
        t.insert_at(vec![Value::Int(2), Value::str("x")], 3)
            .unwrap();
        // Non-unique index: both versions indexed so old snapshots probe.
        t.create_index("t_b".into(), vec![1], false).unwrap();
        let ix = t.indexes().iter().find(|ix| ix.name == "t_b").unwrap();
        assert_eq!(ix.probe(&[Value::str("x")]).len(), 2);
        // Unique index over the same column: the dead version does not
        // conflict with the live one.
        t.create_index("t_b_u".into(), vec![1], true).unwrap();
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = Table::new(schema2());
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        t.truncate();
        assert_eq!(t.len(), 0);
        assert_eq!(t.scan().count(), 0);
        // Indexes emptied: re-insert of an old key is fine.
        t.insert(vec![Value::Int(0), Value::Null]).unwrap();
    }
}
