//! Slotted in-memory table storage with hash indexes.
//!
//! Rows live in a slot vector with a free list, so `RowId`s are stable until
//! the row is deleted. Every table keeps a unique index on its primary key
//! (if declared) plus any number of secondary indexes; rows whose key columns
//! contain NULL are not indexed (a NULL key can never match an equality
//! probe), and NULL-containing keys are exempt from uniqueness, following
//! SQL semantics.

use crate::error::{EngineError, Result};
use crate::hash::FxHashMap;
use crate::schema::TableSchema;
use crate::value::{Row, Value};

/// Stable identifier of a row within its table.
pub type RowId = u32;

/// A hash index over a fixed list of columns.
#[derive(Debug, Clone)]
pub struct HashIndex {
    pub name: String,
    pub columns: Vec<usize>,
    pub unique: bool,
    map: FxHashMap<Box<[Value]>, Vec<RowId>>,
}

impl HashIndex {
    fn new(name: String, columns: Vec<usize>, unique: bool) -> Self {
        HashIndex {
            name,
            columns,
            unique,
            map: FxHashMap::default(),
        }
    }

    /// Extract this index's key from a row; `None` if any key column is NULL.
    pub(crate) fn key_of(&self, row: &[Value]) -> Option<Box<[Value]>> {
        let mut key = Vec::with_capacity(self.columns.len());
        for &c in &self.columns {
            if row[c].is_null() {
                return None;
            }
            key.push(row[c].clone());
        }
        Some(key.into_boxed_slice())
    }

    /// Row ids matching an exact key.
    pub fn probe(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    fn insert(&mut self, key: Box<[Value]>, id: RowId) {
        self.map.entry(key).or_default().push(id);
    }

    fn remove(&mut self, key: &[Value], id: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            if let Some(pos) = v.iter().position(|&x| x == id) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Create an empty table, building the PK index and one index per
    /// declared unique set.
    pub fn new(schema: TableSchema) -> Self {
        let mut t = Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            indexes: Vec::new(),
        };
        if !t.schema.primary_key.is_empty() {
            t.indexes.push(HashIndex::new(
                format!("{}_pkey", t.schema.name),
                t.schema.primary_key.clone(),
                true,
            ));
        }
        for (i, cols) in t.schema.unique.iter().enumerate() {
            // Skip a unique set identical to the PK.
            if *cols == t.schema.primary_key {
                continue;
            }
            t.indexes.push(HashIndex::new(
                format!("{}_uniq{}", t.schema.name, i),
                cols.clone(),
                true,
            ));
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Validate a row against the schema: arity, coercion to the column
    /// types, NOT NULL.
    pub fn validate(&self, values: Vec<Value>) -> Result<Row> {
        if values.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        let mut row = Vec::with_capacity(values.len());
        for (v, col) in values.into_iter().zip(&self.schema.columns) {
            if v.is_null() && col.not_null {
                return Err(EngineError::NullViolation {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            let coerced = v.clone().coerce_to(col.ty).ok_or_else(|| {
                EngineError::TypeError(format!(
                    "value {v} is not valid for column {}.{} of type {}",
                    self.schema.name, col.name, col.ty
                ))
            })?;
            row.push(coerced);
        }
        Ok(row.into_boxed_slice())
    }

    /// Insert a (validated or raw) row. Values are validated here; returns
    /// the new row's id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        let row = self.validate(values)?;
        // Uniqueness checks before any mutation.
        for ix in &self.indexes {
            if !ix.unique {
                continue;
            }
            if let Some(key) = ix.key_of(&row) {
                if !ix.probe(&key).is_empty() {
                    return Err(EngineError::UniqueViolation {
                        table: self.schema.name.clone(),
                        index: ix.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as RowId
            }
        };
        for ix in &mut self.indexes {
            if let Some(key) = ix.key_of(&row) {
                ix.insert(key, id);
            }
        }
        self.slots[id as usize] = Some(row);
        self.live += 1;
        Ok(id)
    }

    /// Remove a row by id, returning it.
    pub fn delete_row(&mut self, id: RowId) -> Option<Row> {
        let row = self.slots.get_mut(id as usize)?.take()?;
        for ix in &mut self.indexes {
            if let Some(key) = ix.key_of(&row) {
                ix.remove(&key, id);
            }
        }
        self.free.push(id);
        self.live -= 1;
        Some(row)
    }

    /// Access a row by id.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id as usize)?.as_ref()
    }

    /// Iterate over live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as RowId, r)))
    }

    /// Remove all rows.
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        for ix in &mut self.indexes {
            ix.map.clear();
        }
    }

    /// The indexes of this table.
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// Create a secondary index (backfilling existing rows). Unique indexes
    /// fail if existing data violates uniqueness.
    pub fn create_index(&mut self, name: String, columns: Vec<usize>, unique: bool) -> Result<()> {
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(EngineError::InvalidDdl(format!(
                    "index column {c} out of range for table {}",
                    self.schema.name
                )));
            }
        }
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(EngineError::DuplicateObject(name));
        }
        let mut ix = HashIndex::new(name, columns, unique);
        for (id, row) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as RowId, r)))
        {
            if let Some(key) = ix.key_of(row) {
                if unique && !ix.probe(&key).is_empty() {
                    return Err(EngineError::UniqueViolation {
                        table: self.schema.name.clone(),
                        index: ix.name,
                        key: format_key(&key),
                    });
                }
                ix.insert(key, id);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop a secondary index by name. Unique indexes back constraint
    /// enforcement (primary keys, UNIQUE sets) and cannot be dropped.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.name == name)
            .ok_or_else(|| EngineError::NoSuchTable(format!("index '{name}'")))?;
        if self.indexes[pos].unique {
            return Err(EngineError::InvalidDdl(format!(
                "index '{name}' enforces a unique constraint and cannot be dropped"
            )));
        }
        // Order-preserving remove: slot 0 is reserved for the PK index
        // (`find_identical` relies on it) and swap_remove would move an
        // arbitrary index there. Note any removal shifts later positions,
        // so compiled plans holding index ids are only protected by the
        // catalog-generation bump in `Database::drop_index`.
        self.indexes.remove(pos);
        Ok(())
    }

    /// True if an index on exactly/subset of `eq_cols` exists; returns the
    /// best (longest-key) index whose columns are all contained in `eq_cols`.
    pub fn best_index(&self, eq_cols: &[usize]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, ix) in self.indexes.iter().enumerate() {
            if ix.columns.iter().all(|c| eq_cols.contains(c)) {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = &self.indexes[b];
                        ix.columns.len() > cur.columns.len()
                            || (ix.columns.len() == cur.columns.len() && ix.unique && !cur.unique)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Find a row identical to `row` (NULLs compared as equal here — this is
    /// *identity*, not SQL equality; used by event normalization).
    pub fn find_identical(&self, row: &[Value]) -> Option<RowId> {
        // Use the PK index when the key is non-null.
        if let Some(ix) = self.indexes.first().filter(|ix| ix.unique) {
            if let Some(key) = ix.key_of(row) {
                for &id in ix.probe(&key) {
                    if self.get(id).is_some_and(|r| r.as_ref() == row) {
                        return Some(id);
                    }
                }
                return None;
            }
        }
        self.scan()
            .find(|(_, r)| r.as_ref() == row)
            .map(|(id, _)| id)
    }
}

pub(crate) fn format_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema2() -> TableSchema {
        let mut s = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "a".into(),
                    ty: DataType::Int,
                    not_null: true,
                },
                Column {
                    name: "b".into(),
                    ty: DataType::Text,
                    not_null: false,
                },
            ],
        );
        s.primary_key = vec![0];
        s
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[1], Value::str("x"));
        let row = t.delete_row(id).unwrap();
        assert_eq!(row[0], Value::Int(1));
        assert_eq!(t.len(), 0);
        assert!(t.get(id).is_none());
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut t = Table::new(schema2());
        let id1 = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.delete_row(id1);
        let id2 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(id1, id2, "slot should be reused");
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = Table::new(schema2());
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let err = t.insert(vec![Value::Int(1), Value::str("y")]).unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation { .. }));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = Table::new(schema2());
        let err = t.insert(vec![Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, EngineError::NullViolation { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema2());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    #[test]
    fn coercion_applied_on_insert() {
        let mut t = Table::new(schema2());
        // Real 2.0 narrows to Int for column a.
        let id = t.insert(vec![Value::real(2.0), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(2));
        // Real 2.5 does not.
        assert!(matches!(
            t.insert(vec![Value::real(2.5), Value::Null]),
            Err(EngineError::TypeError(_))
        ));
    }

    #[test]
    fn pk_index_probe() {
        let mut t = Table::new(schema2());
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::str(format!("r{i}"))])
                .unwrap();
        }
        let ix = &t.indexes()[0];
        let ids = ix.probe(&[Value::Int(42)]);
        assert_eq!(ids.len(), 1);
        assert_eq!(t.get(ids[0]).unwrap()[1], Value::str("r42"));
    }

    #[test]
    fn secondary_index_backfill_and_probe() {
        let mut t = Table::new(schema2());
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "e" } else { "o" }),
            ])
            .unwrap();
        }
        t.create_index("t_b".into(), vec![1], false).unwrap();
        let ix = t.indexes().iter().find(|ix| ix.name == "t_b").unwrap();
        assert_eq!(ix.probe(&[Value::str("e")]).len(), 5);
    }

    #[test]
    fn unique_index_creation_fails_on_duplicates() {
        let mut t = Table::new(schema2());
        t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("x")]).unwrap();
        assert!(t.create_index("u".into(), vec![1], true).is_err());
    }

    #[test]
    fn null_keys_not_indexed_and_exempt_from_unique() {
        let mut t = Table::new(schema2());
        t.create_index("u".into(), vec![1], true).unwrap();
        // Two NULLs in a unique column are fine.
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        let ix = t.indexes().iter().find(|ix| ix.name == "u").unwrap();
        assert!(ix.probe(&[Value::Null]).is_empty());
    }

    #[test]
    fn best_index_prefers_longest() {
        let mut s = schema2();
        s.unique = vec![];
        let mut t = Table::new(s);
        t.create_index("i_b".into(), vec![1], false).unwrap();
        t.create_index("i_ab".into(), vec![0, 1], false).unwrap();
        let best = t.best_index(&[0, 1]).unwrap();
        // PK (a) has 1 column, i_ab has 2 → i_ab wins.
        assert_eq!(t.indexes()[best].name, "i_ab");
        // Only b available → i_b.
        let best = t.best_index(&[1]).unwrap();
        assert_eq!(t.indexes()[best].name, "i_b");
        // Nothing → none.
        assert!(
            t.best_index(&[]).is_none()
                || t.indexes()[t.best_index(&[]).unwrap()].columns.is_empty()
        );
    }

    #[test]
    fn find_identical_uses_pk_and_compares_fully() {
        let mut t = Table::new(schema2());
        let id = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(
            t.find_identical(&[Value::Int(1), Value::str("x")]),
            Some(id)
        );
        assert_eq!(t.find_identical(&[Value::Int(1), Value::str("y")]), None);
        assert_eq!(t.find_identical(&[Value::Int(9), Value::str("x")]), None);
    }

    #[test]
    fn truncate_clears_everything() {
        let mut t = Table::new(schema2());
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        t.truncate();
        assert_eq!(t.len(), 0);
        assert_eq!(t.scan().count(), 0);
        // Indexes emptied: re-insert of an old key is fine.
        t.insert(vec![Value::Int(0), Value::Null]).unwrap();
    }
}
