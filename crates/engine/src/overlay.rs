//! Per-transaction pending updates: the read-your-writes overlay.
//!
//! With multiple sessions (the `tintin-session` crate) attached to one
//! shared [`Database`](crate::Database), a transaction's proposed update can
//! no longer live in the shared `ins_T` / `del_T` event tables — two
//! interleaved transactions would mix their events and each would observe
//! the other's uncommitted state. Instead every open transaction keeps its
//! pending insertions and deletions in a private [`TxOverlay`], and the
//! query evaluator composes the state that transaction observes on the fly.
//! Base-table accesses are pinned to the transaction's `BEGIN`-time MVCC
//! snapshot (the row versions visible at its snapshot timestamp — see
//! [`SharedDatabase::begin_snapshot`](crate::SharedDatabase::begin_snapshot)),
//! so the full visible-state equation is
//!
//! ```text
//! visible(T) = (snapshot(T) minus overlay.del(T)) union overlay.ins(T)
//! ```
//!
//! — the state as of `BEGIN`, minus the transaction's pending deletions,
//! plus its pending insertions. Concurrent commits never change what an
//! open transaction reads; they surface only at `COMMIT`, as
//! first-committer-wins serialization conflicts.
//!
//! Only at `COMMIT` — inside the write-locked staging phase of the phased
//! commit — is the overlay staged into the real event tables
//! ([`Database::stage_overlay`](crate::Database::stage_overlay)), where the
//! paper's `safeCommit` machinery (normalize → check incremental views →
//! apply or reject) takes over, now stamping row versions instead of
//! mutating in place.
//!
//! The overlay is deliberately simple: plain row vectors, scanned linearly
//! during evaluation. Pending updates are bounded by the transaction's own
//! statements (the paper's whole premise is that updates are small relative
//! to the database), so linear passes over them never dominate.

use crate::hash::FxHashMap;
use crate::value::{Row, Value};

/// Pending insertions and deletions for one table inside an open
/// transaction.
///
/// `ins` and `del` play exactly the roles of the paper's `ins_T` / `del_T`
/// event tables, scoped to a single transaction. Rows are stored validated
/// against the base table's schema, so equality against stored rows is
/// exact (no coercion needed at evaluation time).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TableDelta {
    /// Rows this transaction proposes to insert.
    pub ins: Vec<Row>,
    /// Base-table rows this transaction proposes to delete.
    pub del: Vec<Row>,
}

impl TableDelta {
    /// Is `row` hidden from this transaction (proposed for deletion)?
    ///
    /// Deletion is by row identity with set semantics, mirroring how
    /// `safeCommit` applies `del_T`: one pending deletion hides — and at
    /// apply time removes — *every* identical base row.
    pub fn hides(&self, row: &[Value]) -> bool {
        self.del.iter().any(|r| r.as_ref() == row)
    }

    /// No pending events for this table?
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    /// Fold one statement's planned effect into this delta (the merge
    /// behind [`TxOverlay::apply_delta`]; also used to build the candidate
    /// state that statement-time uniqueness is validated against).
    ///
    /// Retractions cancel pending insertions one-for-one (deleting a row
    /// this transaction inserted simply un-proposes it); deletions of base
    /// rows are deduplicated exactly as event capture deduplicates `del_T`
    /// rows; new insertions append.
    pub fn merge(&mut self, delta: &DmlDelta) {
        for row in &delta.retract_ins {
            if let Some(i) = self.ins.iter().position(|x| x == row) {
                self.ins.remove(i);
            }
        }
        for row in &delta.del {
            if !self.del.contains(row) {
                self.del.push(row.clone());
            }
        }
        self.ins.extend(delta.ins.iter().cloned());
    }
}

/// A transaction's private pending update: per-table insertion and deletion
/// sets, overlaid onto the shared database during query evaluation so the
/// transaction reads its own writes without publishing them.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TxOverlay {
    tables: FxHashMap<String, TableDelta>,
}

impl TxOverlay {
    /// An empty overlay (a freshly opened transaction).
    pub fn new() -> Self {
        TxOverlay::default()
    }

    /// The pending delta for `table`, if any statement touched it.
    pub fn delta(&self, table: &str) -> Option<&TableDelta> {
        self.tables.get(table)
    }

    /// Mutable access to the delta for `table`, creating it on first use.
    pub fn delta_mut(&mut self, table: &str) -> &mut TableDelta {
        self.tables.entry(table.to_string()).or_default()
    }

    /// Names of tables with pending events, sorted (deterministic).
    pub fn touched_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Total pending `(insertions, deletions)` across all tables.
    pub fn counts(&self) -> (usize, usize) {
        let mut ins = 0;
        let mut del = 0;
        for d in self.tables.values() {
            ins += d.ins.len();
            del += d.del.len();
        }
        (ins, del)
    }

    /// No pending events at all?
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(|d| d.is_empty())
    }

    /// Fold one statement's planned effect
    /// ([`Database::plan_dml`](crate::Database::plan_dml)) into the overlay
    /// (see [`TableDelta::merge`] for the semantics).
    pub fn apply_delta(&mut self, delta: &DmlDelta) {
        self.delta_mut(&delta.table).merge(delta);
    }
}

/// The planned effect of one DML statement, computed by
/// [`Database::plan_dml`](crate::Database::plan_dml) against the state the
/// transaction observes (base tables composed with its [`TxOverlay`]) —
/// without mutating anything.
#[derive(Debug, Clone, Default)]
pub struct DmlDelta {
    /// The target table.
    pub table: String,
    /// Rows the statement matched/produced, as reported to the client.
    pub rows_affected: usize,
    /// Rows newly proposed for insertion.
    pub ins: Vec<Row>,
    /// Visible base rows newly proposed for deletion.
    pub del: Vec<Row>,
    /// Pending insertions of this same transaction that the statement
    /// deletes or replaces before they were ever committed.
    pub retract_ins: Vec<Row>,
}
