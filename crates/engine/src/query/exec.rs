//! Plan execution: index-nested-loop join with 3VL predicates, short-circuit
//! `EXISTS`, per-execution materialization cache with ad-hoc hash indexes.

use super::agg::Acc;
use super::compile::{
    compile_query, Access, CBody, CExpr, CInSub, CompiledQuery, CompiledSelect, MatRef,
};
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::hash::{FxHashMap, FxHashSet};
use crate::overlay::TxOverlay;
use crate::value::{Truth, Value};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::ops::ControlFlow;
use std::rc::Rc;
use tintin_sql::BinOp;

/// Lazily built hash indexes over a materialized rowset, keyed by the
/// column set probed.
type AdHocIndexes = FxHashMap<Box<[u32]>, FxHashMap<Box<[Value]>, Vec<u32>>>;

/// A materialized rowset (view or derived table) with lazily built ad-hoc
/// hash indexes keyed by column sets.
#[derive(Debug)]
pub struct Materialized {
    pub rows: Vec<Rc<[Value]>>,
    indexes: RefCell<AdHocIndexes>,
}

impl Materialized {
    fn new(rows: Vec<Rc<[Value]>>) -> Self {
        Materialized {
            rows,
            indexes: RefCell::new(FxHashMap::default()),
        }
    }

    /// Row positions matching `key` on `cols`, building the hash index on
    /// first use. Rows with NULL in any key column are not indexed.
    fn probe(&self, cols: &[u32], key: &[Value]) -> Vec<u32> {
        let mut indexes = self.indexes.borrow_mut();
        let index = indexes.entry(cols.into()).or_insert_with(|| {
            let mut m: FxHashMap<Box<[Value]>, Vec<u32>> = FxHashMap::default();
            'rows: for (i, row) in self.rows.iter().enumerate() {
                let mut k = Vec::with_capacity(cols.len());
                for &c in cols {
                    let v = &row[c as usize];
                    if v.is_null() {
                        continue 'rows;
                    }
                    k.push(v.clone());
                }
                m.entry(k.into_boxed_slice()).or_default().push(i as u32);
            }
            m
        });
        index.get(key).cloned().unwrap_or_default()
    }
}

/// A row bound to a FROM source during execution.
#[derive(Clone)]
enum BoundRow<'a> {
    Table(&'a [Value]),
    Mat(Rc<[Value]>),
    Empty,
}

impl BoundRow<'_> {
    fn values(&self) -> &[Value] {
        match self {
            BoundRow::Table(r) => r,
            BoundRow::Mat(r) => r,
            BoundRow::Empty => &[],
        }
    }
}

/// Execution context: the database, the binding-frame stack, and the
/// materialization caches (shared across one top-level execution).
///
/// An optional [`TxOverlay`] supplies read-your-writes semantics, and a
/// snapshot timestamp pins which committed row versions table scans and
/// index probes observe. Together they compose the state a transaction
/// sees: `(snapshot − overlay.del) ∪ overlay.ins` — the transaction's
/// `BEGIN`-time state plus its own pending updates, regardless of what
/// other sessions commit meanwhile.
pub struct ExecCtx<'a> {
    pub db: &'a Database,
    overlay: Option<&'a TxOverlay>,
    /// Commit timestamp whose versions are visible
    /// ([`crate::table::TS_LATEST`] = live state).
    snapshot: u64,
    frames: Vec<Vec<BoundRow<'a>>>,
    view_cache: FxHashMap<String, Rc<Materialized>>,
    derived_cache: FxHashMap<usize, Rc<Materialized>>,
    materializing: Vec<String>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(db: &'a Database) -> Self {
        ExecCtx {
            db,
            overlay: None,
            snapshot: crate::table::TS_LATEST,
            frames: Vec::new(),
            view_cache: FxHashMap::default(),
            derived_cache: FxHashMap::default(),
            materializing: Vec::new(),
        }
    }

    /// A context that evaluates every base-table access through a
    /// transaction's pending-update overlay (read-your-writes).
    pub fn with_overlay(db: &'a Database, overlay: &'a TxOverlay) -> Self {
        ExecCtx {
            overlay: Some(overlay),
            ..ExecCtx::new(db)
        }
    }

    /// A context pinned to the row versions visible at commit timestamp
    /// `snapshot` (MVCC snapshot reads).
    pub fn at_snapshot(db: &'a Database, snapshot: u64) -> Self {
        ExecCtx {
            snapshot,
            ..ExecCtx::new(db)
        }
    }

    /// Snapshot visibility plus a transaction's pending-update overlay: the
    /// full visible-state equation `(snapshot − del) ∪ ins`.
    pub fn with_overlay_at(db: &'a Database, overlay: &'a TxOverlay, snapshot: u64) -> Self {
        ExecCtx {
            overlay: Some(overlay),
            snapshot,
            ..ExecCtx::new(db)
        }
    }

    fn row(&self, level: u32, source: u32) -> &[Value] {
        let frame = &self.frames[self.frames.len() - 1 - level as usize];
        frame[source as usize].values()
    }

    fn resolve_mat(&mut self, mat: &MatRef) -> Result<Rc<Materialized>> {
        match mat {
            MatRef::View(name) => {
                if let Some(m) = self.view_cache.get(name) {
                    return Ok(m.clone());
                }
                if self.materializing.iter().any(|n| n == name) {
                    return Err(EngineError::Unsupported(format!(
                        "cyclic view reference involving '{name}'"
                    )));
                }
                let (vq, _) = self
                    .db
                    .view(name)
                    .ok_or_else(|| EngineError::NoSuchTable(name.clone()))?;
                let compiled = compile_query(self.db, vq)?;
                self.materializing.push(name.clone());
                let rows = execute_query(&compiled, self);
                self.materializing.pop();
                let m = Rc::new(Materialized::new(rows?.into_iter().map(Rc::from).collect()));
                self.view_cache.insert(name.clone(), m.clone());
                Ok(m)
            }
            MatRef::Derived(cq) => {
                let key = (&**cq) as *const CompiledQuery as usize;
                if let Some(m) = self.derived_cache.get(&key) {
                    return Ok(m.clone());
                }
                let rows = execute_query(cq, self)?;
                let m = Rc::new(Materialized::new(rows.into_iter().map(Rc::from).collect()));
                self.derived_cache.insert(key, m.clone());
                Ok(m)
            }
        }
    }
}

/// Execute a compiled query, returning its rows (ORDER BY / LIMIT applied).
pub fn execute_query(q: &CompiledQuery, ctx: &mut ExecCtx<'_>) -> Result<Vec<Box<[Value]>>> {
    let mut rows = eval_body(&q.body, ctx)?;
    if !q.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (i, desc) in &q.order_by {
                let ord = a[*i].cmp(&b[*i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = q.limit {
        rows.truncate(n as usize);
    }
    Ok(rows)
}

/// Evaluate a single-row scalar expression (compiled by
/// `compile_row_predicate`) against `row`; used by UPDATE assignments.
pub fn eval_row_scalar<'a>(expr: &CExpr, row: &'a [Value], ctx: &mut ExecCtx<'a>) -> Result<Value> {
    ctx.frames.push(vec![BoundRow::Table(row)]);
    let r = eval_scalar(expr, ctx);
    ctx.frames.pop();
    r
}

/// Evaluate a single-row predicate (compiled by `compile_row_predicate`)
/// against `row`.
pub fn eval_row_predicate<'a>(
    pred: &CExpr,
    row: &'a [Value],
    ctx: &mut ExecCtx<'a>,
) -> Result<Truth> {
    ctx.frames.push(vec![BoundRow::Table(row)]);
    let r = eval_truth(pred, ctx);
    ctx.frames.pop();
    r
}

fn eval_body(b: &CBody, ctx: &mut ExecCtx<'_>) -> Result<Vec<Box<[Value]>>> {
    match b {
        CBody::Select(s) => eval_select_collect(s, ctx),
        CBody::Union { left, right, all } => {
            let mut rows = eval_body(left, ctx)?;
            rows.extend(eval_body(right, ctx)?);
            if !all {
                let mut seen: FxHashSet<Box<[Value]>> = FxHashSet::default();
                rows.retain(|r| seen.insert(r.clone()));
            }
            Ok(rows)
        }
    }
}

fn eval_select_collect(s: &CompiledSelect, ctx: &mut ExecCtx<'_>) -> Result<Vec<Box<[Value]>>> {
    if s.agg.is_some() {
        return eval_agg_select(s, ctx);
    }
    let mut rows = Vec::new();
    let mut seen: FxHashSet<Box<[Value]>> = FxHashSet::default();
    let _ = for_each_row(s, ctx, &mut |ctx| {
        let mut out = Vec::with_capacity(s.output.len());
        for o in &s.output {
            out.push(eval_scalar(&o.expr, ctx)?);
        }
        let row: Box<[Value]> = out.into_boxed_slice();
        if !s.distinct || seen.insert(row.clone()) {
            rows.push(row);
        }
        Ok(ControlFlow::Continue(()))
    })?;
    Ok(rows)
}

/// Evaluate an aggregate select: drive the join, group rows, finalize
/// accumulators, filter with HAVING, project per group.
fn eval_agg_select(s: &CompiledSelect, ctx: &mut ExecCtx<'_>) -> Result<Vec<Box<[Value]>>> {
    let plan = s.agg.as_ref().expect("caller checked agg");
    let mut group_order: Vec<Box<[Value]>> = Vec::new();
    let mut group_idx: FxHashMap<Box<[Value]>, usize> = FxHashMap::default();
    let mut group_accs: Vec<Vec<Acc>> = Vec::new();
    let _ = for_each_row(s, ctx, &mut |ctx| {
        let mut key = Vec::with_capacity(plan.group_by.len());
        for k in &plan.group_by {
            key.push(eval_scalar(k, ctx)?);
        }
        let key: Box<[Value]> = key.into_boxed_slice();
        let gi = match group_idx.get(&key) {
            Some(gi) => *gi,
            None => {
                let gi = group_order.len();
                group_idx.insert(key.clone(), gi);
                group_order.push(key);
                group_accs.push(plan.aggs.iter().map(|a| Acc::new(a.distinct)).collect());
                gi
            }
        };
        for (spec, acc) in plan.aggs.iter().zip(&mut group_accs[gi]) {
            let v = match &spec.arg {
                Some(e) => Some(eval_scalar(e, ctx)?),
                None => None, // COUNT(*)
            };
            acc.update(v)?;
        }
        Ok(ControlFlow::Continue(()))
    })?;
    // Global aggregate over empty input yields one (empty-keyed) group.
    if group_order.is_empty() && plan.group_by.is_empty() {
        group_order.push(Vec::new().into_boxed_slice());
        group_accs.push(plan.aggs.iter().map(|a| Acc::new(a.distinct)).collect());
    }
    let mut rows = Vec::with_capacity(group_order.len());
    let mut seen: FxHashSet<Box<[Value]>> = FxHashSet::default();
    for (key, accs) in group_order.iter().zip(&group_accs) {
        let agg_vals: Vec<Value> = plan
            .aggs
            .iter()
            .zip(accs)
            .map(|(spec, acc)| acc.finalize(spec.func, acc.saw_string()))
            .collect::<Result<_>>()?;
        if let Some(h) = &plan.having {
            if super::agg::eval_gtruth(h, key, &agg_vals)? != Truth::True {
                continue;
            }
        }
        let mut out = Vec::with_capacity(plan.outputs.len());
        for o in &plan.outputs {
            out.push(super::agg::eval_gexpr(&o.expr, key, &agg_vals)?);
        }
        let row: Box<[Value]> = out.into_boxed_slice();
        if !s.distinct || seen.insert(row.clone()) {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// True if any branch produces at least one row.
pub(crate) fn exists_any(branches: &[CompiledSelect], ctx: &mut ExecCtx<'_>) -> Result<bool> {
    exists_any_iter(branches.iter(), ctx)
}

fn exists_any_iter<'b>(
    branches: impl Iterator<Item = &'b CompiledSelect>,
    ctx: &mut ExecCtx<'_>,
) -> Result<bool> {
    for b in branches {
        if b.agg.is_some() {
            if !eval_agg_select(b, ctx)?.is_empty() {
                return Ok(true);
            }
            continue;
        }
        let mut found = false;
        for_each_row(b, ctx, &mut |_| {
            found = true;
            Ok(ControlFlow::Break(()))
        })
        .map(|_| ())?;
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Does the query return at least one row? Short-circuits on the first hit
/// instead of materializing the result — the fast path for emptiness
/// checks (TINTIN's violation views are empty on every clean commit).
pub fn query_returns_rows(q: &CompiledQuery, ctx: &mut ExecCtx<'_>) -> Result<bool> {
    if q.limit == Some(0) {
        return Ok(false);
    }
    // DISTINCT, ORDER BY and a non-zero LIMIT don't affect emptiness.
    exists_any_iter(q.body.branches().into_iter(), ctx)
}

/// Shared arithmetic entry point for the aggregate evaluator.
pub(crate) fn arith_pub(op: BinOp, l: Value, r: Value) -> Result<Value> {
    arith(op, l, r)
}

type RowCb<'cb, 'a> = dyn FnMut(&mut ExecCtx<'a>) -> Result<ControlFlow<()>> + 'cb;

/// Drive the nested-loop join, invoking `cb` once per fully bound row
/// combination that passes all filters.
fn for_each_row<'a>(
    s: &CompiledSelect,
    ctx: &mut ExecCtx<'a>,
    cb: &mut RowCb<'_, 'a>,
) -> Result<ControlFlow<()>> {
    ctx.frames.push(vec![BoundRow::Empty; s.sources.len()]);
    let result = (|| {
        for f in &s.pre_filters {
            if !eval_truth(f, ctx)?.is_true() {
                return Ok(ControlFlow::Continue(()));
            }
        }
        bind_source(s, 0, ctx, cb)
    })();
    ctx.frames.pop();
    result
}

fn bind_source<'a>(
    s: &CompiledSelect,
    i: usize,
    ctx: &mut ExecCtx<'a>,
    cb: &mut RowCb<'_, 'a>,
) -> Result<ControlFlow<()>> {
    if i == s.sources.len() {
        return cb(ctx);
    }
    let src = &s.sources[i];
    match &src.access {
        Access::Scan { table } => {
            let db = ctx.db;
            let t = db
                .table(table)
                .ok_or_else(|| EngineError::NoSuchTable(table.clone()))?;
            let delta = ctx.overlay.and_then(|o| o.delta(table));
            for (_, row) in t.scan_at(ctx.snapshot) {
                if delta.is_some_and(|d| d.hides(row)) {
                    continue;
                }
                let frame_idx = ctx.frames.len() - 1;
                ctx.frames[frame_idx][i] = BoundRow::Table(row);
                if pass_filters(&src.filters, ctx)?
                    && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                {
                    return Ok(ControlFlow::Break(()));
                }
            }
            if let Some(d) = delta {
                for row in &d.ins {
                    let frame_idx = ctx.frames.len() - 1;
                    ctx.frames[frame_idx][i] = BoundRow::Table(row);
                    if pass_filters(&src.filters, ctx)?
                        && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                    {
                        return Ok(ControlFlow::Break(()));
                    }
                }
            }
            Ok(ControlFlow::Continue(()))
        }
        Access::Probe { table, index, key } => {
            let db = ctx.db;
            let t = db
                .table(table)
                .ok_or_else(|| EngineError::NoSuchTable(table.clone()))?;
            let delta = ctx.overlay.and_then(|o| o.delta(table));
            let ix = &t.indexes()[*index];
            // Evaluate the probe key; NULL or uncoercible keys match nothing.
            let mut kv = Vec::with_capacity(key.len());
            for (kexpr, &colpos) in key.iter().zip(&ix.columns) {
                let v = eval_scalar(kexpr, ctx)?;
                if v.is_null() {
                    return Ok(ControlFlow::Continue(()));
                }
                match v.coerce_for_probe(t.schema.columns[colpos].ty) {
                    Ok(v) => kv.push(v),
                    Err(_) => return Ok(ControlFlow::Continue(())),
                }
            }
            // The probe result is cloned into a small Vec because the index
            // borrow cannot outlive frame mutation. Probes return *version*
            // candidates; visibility filters them to the snapshot.
            let ids: Vec<u32> = ix.probe(&kv).to_vec();
            for id in ids {
                let Some(row) = t.get_at(id, ctx.snapshot) else {
                    continue;
                };
                if delta.is_some_and(|d| d.hides(row)) {
                    continue;
                }
                let frame_idx = ctx.frames.len() - 1;
                ctx.frames[frame_idx][i] = BoundRow::Table(row);
                if pass_filters(&src.filters, ctx)?
                    && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                {
                    return Ok(ControlFlow::Break(()));
                }
            }
            // Pending insertions are few (bounded by the transaction's own
            // statements), so the probe over them is a linear filter on the
            // index's key columns. Rows are stored schema-validated, which
            // makes direct `Value` equality against the coerced key exact.
            if let Some(d) = delta {
                let ix_columns = &ix.columns;
                for row in &d.ins {
                    if !ix_columns.iter().zip(&kv).all(|(&c, k)| row[c] == *k) {
                        continue;
                    }
                    let frame_idx = ctx.frames.len() - 1;
                    ctx.frames[frame_idx][i] = BoundRow::Table(row);
                    if pass_filters(&src.filters, ctx)?
                        && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                    {
                        return Ok(ControlFlow::Break(()));
                    }
                }
            }
            Ok(ControlFlow::Continue(()))
        }
        Access::MatScan { mat } => {
            let m = ctx.resolve_mat(mat)?;
            for row in &m.rows {
                let frame_idx = ctx.frames.len() - 1;
                ctx.frames[frame_idx][i] = BoundRow::Mat(row.clone());
                if pass_filters(&src.filters, ctx)?
                    && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                {
                    return Ok(ControlFlow::Break(()));
                }
            }
            Ok(ControlFlow::Continue(()))
        }
        Access::MatProbe { mat, cols, key } => {
            let m = ctx.resolve_mat(mat)?;
            let mut kv = Vec::with_capacity(key.len());
            for kexpr in key {
                let v = eval_scalar(kexpr, ctx)?;
                if v.is_null() {
                    return Ok(ControlFlow::Continue(()));
                }
                kv.push(v);
            }
            for pos in m.probe(cols, &kv) {
                let row = m.rows[pos as usize].clone();
                let frame_idx = ctx.frames.len() - 1;
                ctx.frames[frame_idx][i] = BoundRow::Mat(row);
                if pass_filters(&src.filters, ctx)?
                    && bind_source(s, i + 1, ctx, cb)? == ControlFlow::Break(())
                {
                    return Ok(ControlFlow::Break(()));
                }
            }
            Ok(ControlFlow::Continue(()))
        }
    }
}

fn pass_filters(filters: &[CExpr], ctx: &mut ExecCtx<'_>) -> Result<bool> {
    for f in filters {
        if !eval_truth(f, ctx)?.is_true() {
            return Ok(false);
        }
    }
    Ok(true)
}

// -------------------------------------------------------------- scalars

/// Evaluate a scalar expression under the current bindings.
pub(crate) fn eval_scalar(e: &CExpr, ctx: &mut ExecCtx<'_>) -> Result<Value> {
    Ok(match e {
        CExpr::Const(v) => v.clone(),
        CExpr::Bool(_) => {
            return Err(EngineError::TypeError(
                "boolean used as a scalar value".into(),
            ))
        }
        CExpr::Col { level, source, col } => ctx.row(*level, *source)[*col as usize].clone(),
        CExpr::Binary { op, left, right }
            if !op.is_comparison() && *op != BinOp::And && *op != BinOp::Or =>
        {
            let l = eval_scalar(left, ctx)?;
            let r = eval_scalar(right, ctx)?;
            arith(*op, l, r)?
        }
        CExpr::Neg(x) => match eval_scalar(x, ctx)? {
            Value::Null => Value::Null,
            Value::Int(v) => Value::Int(-v),
            Value::Real(v) => Value::real(-v.get()),
            v => {
                return Err(EngineError::TypeError(format!(
                    "cannot negate non-numeric value {v}"
                )))
            }
        },
        // Predicates in scalar position are not part of the supported
        // fragment (no BOOLEAN storage class).
        _ => {
            return Err(EngineError::TypeError(
                "predicate used in scalar context".into(),
            ))
        }
    })
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    return Err(EngineError::TypeError("division by zero".into()));
                }
                Value::Int(a.wrapping_div(b))
            }
            _ => unreachable!("arith called with non-arith op"),
        }),
        (a, b) => {
            let fa = to_f64(&a)?;
            let fb = to_f64(&b)?;
            Ok(match op {
                BinOp::Add => Value::real(fa + fb),
                BinOp::Sub => Value::real(fa - fb),
                BinOp::Mul => Value::real(fa * fb),
                BinOp::Div => {
                    if fb == 0.0 {
                        return Err(EngineError::TypeError("division by zero".into()));
                    }
                    Value::real(fa / fb)
                }
                _ => unreachable!("arith called with non-arith op"),
            })
        }
    }
}

fn to_f64(v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Real(r) => Ok(r.get()),
        other => Err(EngineError::TypeError(format!(
            "cannot use {other} in arithmetic"
        ))),
    }
}

/// Evaluate a predicate expression to a 3VL truth value.
pub(crate) fn eval_truth(e: &CExpr, ctx: &mut ExecCtx<'_>) -> Result<Truth> {
    Ok(match e {
        CExpr::Bool(b) => Truth::from_bool(*b),
        CExpr::Const(Value::Null) => Truth::Unknown,
        CExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval_truth(left, ctx)?;
                // Short-circuit False.
                if l == Truth::False {
                    Truth::False
                } else {
                    l.and(eval_truth(right, ctx)?)
                }
            }
            BinOp::Or => {
                let l = eval_truth(left, ctx)?;
                if l == Truth::True {
                    Truth::True
                } else {
                    l.or(eval_truth(right, ctx)?)
                }
            }
            op if op.is_comparison() => {
                let l = eval_scalar(left, ctx)?;
                let r = eval_scalar(right, ctx)?;
                compare(*op, &l, &r)
            }
            _ => {
                return Err(EngineError::TypeError(
                    "arithmetic expression used as a predicate".into(),
                ))
            }
        },
        CExpr::Not(x) => eval_truth(x, ctx)?.not(),
        CExpr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, ctx)?;
            let t = Truth::from_bool(v.is_null());
            if *negated {
                t.not()
            } else {
                t
            }
        }
        CExpr::Exists { branches, negated } => {
            let t = Truth::from_bool(exists_any(branches, ctx)?);
            if *negated {
                t.not()
            } else {
                t
            }
        }
        CExpr::InSub(isub) => eval_in_sub(isub, ctx)?,
        CExpr::InList {
            probe,
            list,
            negated,
        } => {
            let p = eval_scalar(probe, ctx)?;
            let mut result = Truth::False;
            for item in list {
                let v = eval_scalar(item, ctx)?;
                match compare(BinOp::Eq, &p, &v) {
                    Truth::True => {
                        result = Truth::True;
                        break;
                    }
                    Truth::Unknown => result = Truth::Unknown,
                    Truth::False => {}
                }
            }
            if *negated {
                result.not()
            } else {
                result
            }
        }
        _ => {
            return Err(EngineError::TypeError(
                "scalar expression used as a predicate".into(),
            ))
        }
    })
}

fn compare(op: BinOp, l: &Value, r: &Value) -> Truth {
    match l.sql_cmp(r) {
        None => Truth::Unknown,
        Some(ord) => Truth::from_bool(match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::NotEq => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::LtEq => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::GtEq => ord != Ordering::Less,
            _ => unreachable!("compare called with non-comparison"),
        }),
    }
}

fn eval_in_sub(isub: &CInSub, ctx: &mut ExecCtx<'_>) -> Result<Truth> {
    let mut probe_vals = Vec::with_capacity(isub.probes.len());
    for p in &isub.probes {
        probe_vals.push(eval_scalar(p, ctx)?);
    }
    let any_null_probe = probe_vals.iter().any(|v| v.is_null());
    let t = if let (false, Some(fast)) = (any_null_probe, &isub.fast) {
        // Index-friendly existence path.
        Truth::from_bool(exists_any(fast, ctx)?)
    } else {
        // General 3VL path: materialize the subquery rows (handles both
        // plain and aggregate branches) and compare tuples.
        let mut result = Truth::False;
        'outer: for b in &isub.slow {
            let rows = eval_select_collect(b, ctx)?;
            for row in rows {
                let mut cmp = Truth::True;
                for (pv, v) in probe_vals.iter().zip(row.iter()) {
                    cmp = cmp.and(compare(BinOp::Eq, pv, v));
                    if cmp == Truth::False {
                        break;
                    }
                }
                match cmp {
                    Truth::True => {
                        result = Truth::True;
                        break 'outer;
                    }
                    Truth::Unknown => result = Truth::Unknown,
                    Truth::False => {}
                }
            }
        }
        result
    };
    Ok(if isub.negated { t.not() } else { t })
}
