//! Plan rendering (`EXPLAIN`): a readable tree of the compiled access paths
//! so users can verify that the incremental views really run as index
//! probes (the property the paper's efficiency rests on).

use super::compile::{Access, CBody, CExpr, CInSub, CompiledQuery, CompiledSelect, MatRef};
use crate::database::Database;
use crate::value::Value;
use std::fmt::Write;

/// Render a compiled query as an indented plan tree.
pub fn explain(db: &Database, q: &CompiledQuery) -> String {
    let mut out = String::new();
    let mut r = Renderer { db, out: &mut out };
    r.body(&q.body, 0);
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|(i, desc)| {
                format!(
                    "{}{}",
                    q.output_names
                        .get(*i)
                        .cloned()
                        .unwrap_or_else(|| format!("#{i}")),
                    if *desc { " DESC" } else { "" }
                )
            })
            .collect();
        let _ = writeln!(out, "Sort [{}]", keys.join(", "));
    }
    if let Some(n) = q.limit {
        let _ = writeln!(out, "Limit {n}");
    }
    out
}

struct Renderer<'a> {
    db: &'a Database,
    out: &'a mut String,
}

impl Renderer<'_> {
    fn line(&mut self, depth: usize, text: &str) {
        let _ = writeln!(self.out, "{}{}", "  ".repeat(depth), text);
    }

    fn body(&mut self, b: &CBody, depth: usize) {
        match b {
            CBody::Select(s) => self.select(s, depth),
            CBody::Union { left, right, all } => {
                self.line(depth, if *all { "UnionAll" } else { "Union" });
                self.body(left, depth + 1);
                self.body(right, depth + 1);
            }
        }
    }

    fn select(&mut self, s: &CompiledSelect, depth: usize) {
        let mut header = String::from("Select");
        if s.distinct {
            header.push_str(" distinct");
        }
        if let Some(plan) = &s.agg {
            let _ = write!(
                header,
                " aggregate[{} keys, {} accs]",
                plan.group_by.len(),
                plan.aggs.len()
            );
        }
        self.line(depth, &header);
        for f in &s.pre_filters {
            let txt = self.expr(f, s);
            self.line(depth + 1, &format!("PreFilter {txt}"));
        }
        for src in &s.sources {
            match &src.access {
                Access::Scan { table } => {
                    self.line(depth + 1, &format!("Scan {table} as {}", src.binding));
                }
                Access::Probe { table, index, key } => {
                    let ixname = self
                        .db
                        .table(table)
                        .and_then(|t| t.indexes().get(*index))
                        .map(|ix| ix.name.clone())
                        .unwrap_or_else(|| format!("#{index}"));
                    let keys: Vec<String> = key.iter().map(|k| self.expr(k, s)).collect();
                    self.line(
                        depth + 1,
                        &format!(
                            "Probe {table} as {} via {ixname} [{}]",
                            src.binding,
                            keys.join(", ")
                        ),
                    );
                }
                Access::MatScan { mat } => {
                    self.line(
                        depth + 1,
                        &format!("MatScan {} as {}", mat_name(mat), src.binding),
                    );
                }
                Access::MatProbe { mat, cols, key } => {
                    let keys: Vec<String> = key.iter().map(|k| self.expr(k, s)).collect();
                    self.line(
                        depth + 1,
                        &format!(
                            "MatProbe {} as {} on cols {:?} [{}]",
                            mat_name(mat),
                            src.binding,
                            cols,
                            keys.join(", ")
                        ),
                    );
                }
            }
            for f in &src.filters {
                let txt = self.expr(f, s);
                self.line(depth + 2, &format!("Filter {txt}"));
                self.subplans(f, s, depth + 2);
            }
        }
        if s.sources.is_empty() {
            self.line(depth + 1, "SingleRow");
        }
        for f in &s.pre_filters {
            self.subplans(f, s, depth + 1);
        }
    }

    /// Render nested subquery plans under EXISTS/IN filters.
    fn subplans(&mut self, e: &CExpr, _outer: &CompiledSelect, depth: usize) {
        match e {
            CExpr::Exists { branches, negated } => {
                self.line(
                    depth,
                    if *negated {
                        "AntiJoin (NOT EXISTS)"
                    } else {
                        "SemiJoin (EXISTS)"
                    },
                );
                for b in branches {
                    self.select(b, depth + 1);
                }
            }
            CExpr::InSub(isub) => {
                self.in_sub(isub, depth);
            }
            CExpr::Binary { left, right, .. } => {
                self.subplans(left, _outer, depth);
                self.subplans(right, _outer, depth);
            }
            CExpr::Not(x) | CExpr::Neg(x) => self.subplans(x, _outer, depth),
            CExpr::IsNull { expr, .. } => self.subplans(expr, _outer, depth),
            _ => {}
        }
    }

    fn in_sub(&mut self, isub: &CInSub, depth: usize) {
        self.line(
            depth,
            if isub.negated {
                "AntiJoin (NOT IN)"
            } else {
                "SemiJoin (IN)"
            },
        );
        match &isub.fast {
            Some(fast) => {
                self.line(depth + 1, "fast path (non-null outputs):");
                for b in fast {
                    self.select(b, depth + 2);
                }
            }
            None => {
                for b in &isub.slow {
                    self.select(b, depth + 1);
                }
            }
        }
    }

    /// Best-effort textual form of a compiled expression.
    fn expr(&self, e: &CExpr, s: &CompiledSelect) -> String {
        match e {
            CExpr::Const(v) => match v {
                Value::Str(x) => format!("'{x}'"),
                other => other.to_string(),
            },
            CExpr::Bool(b) => b.to_string().to_uppercase(),
            CExpr::Col { level, source, col } => {
                if *level == 0 {
                    let binding = s
                        .sources
                        .get(*source as usize)
                        .map(|src| src.binding.clone())
                        .unwrap_or_else(|| format!("src{source}"));
                    let colname = s
                        .sources
                        .get(*source as usize)
                        .and_then(|src| match &src.access {
                            Access::Scan { table } | Access::Probe { table, .. } => self
                                .db
                                .table(table)
                                .and_then(|t| t.schema.columns.get(*col as usize))
                                .map(|c| c.name.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| format!("#{col}"));
                    format!("{binding}.{colname}")
                } else {
                    format!("outer[{level}].src{source}.#{col}")
                }
            }
            CExpr::Binary { op, left, right } => {
                format!("{} {op} {}", self.expr(left, s), self.expr(right, s))
            }
            CExpr::Not(x) => format!("NOT ({})", self.expr(x, s)),
            CExpr::Neg(x) => format!("-({})", self.expr(x, s)),
            CExpr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                self.expr(expr, s),
                if *negated { "NOT " } else { "" }
            ),
            CExpr::Exists { negated, .. } => {
                format!("{}EXISTS (…)", if *negated { "NOT " } else { "" })
            }
            CExpr::InSub(isub) => {
                format!("{}IN (subquery)", if isub.negated { "NOT " } else { "" })
            }
            CExpr::InList { negated, .. } => {
                format!("{}IN (list)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

fn mat_name(mat: &MatRef) -> String {
    match mat {
        MatRef::View(name) => format!("view {name}"),
        MatRef::Derived(_) => "derived".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::Database;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
             CREATE TABLE lineitem (l_orderkey INT NOT NULL REFERENCES orders,
                 l_linenumber INT NOT NULL, PRIMARY KEY (l_orderkey, l_linenumber));",
        )
        .unwrap();
        db
    }

    #[test]
    fn explain_shows_probe_for_correlated_not_exists() {
        let d = db();
        let plan = d
            .explain_sql(
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            )
            .unwrap();
        assert!(plan.contains("Scan orders as o"), "{plan}");
        assert!(plan.contains("AntiJoin (NOT EXISTS)"), "{plan}");
        assert!(
            plan.contains("Probe lineitem as l via lineitem_fk0"),
            "{plan}"
        );
    }

    #[test]
    fn explain_shows_sort_and_limit() {
        let d = db();
        let plan = d
            .explain_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC LIMIT 3")
            .unwrap();
        assert!(plan.contains("Sort [o_orderkey DESC]"), "{plan}");
        assert!(plan.contains("Limit 3"), "{plan}");
    }

    #[test]
    fn explain_shows_aggregate_header() {
        let d = db();
        let plan = d
            .explain_sql(
                "SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_orderkey
                 HAVING COUNT(*) > 1",
            )
            .unwrap();
        assert!(plan.contains("aggregate[1 keys, 2 accs]"), "{plan}");
    }
}
