//! Aggregate evaluation: `COUNT` / `SUM` / `AVG` / `MIN` / `MAX`,
//! `GROUP BY` and `HAVING`.
//!
//! An aggregate select is compiled into an [`AggPlan`]: per-row group-key
//! and argument expressions (ordinary [`CExpr`]s) plus per-group output
//! expressions ([`GExpr`]s) over the finalized key and accumulator values.
//! SQL semantics: aggregates ignore NULLs, `COUNT` of an empty group is 0,
//! the other aggregates are NULL, and a query with aggregates but no
//! `GROUP BY` yields exactly one row even on empty input.

use super::compile::CExpr;
use crate::error::{EngineError, Result};
use crate::hash::FxHashSet;
use crate::value::{Truth, Value};
use std::cmp::Ordering;
use tintin_sql::BinOp;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One accumulator slot: the function, its per-row argument (`None` =
/// `COUNT(*)`), and the DISTINCT flag.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub arg: Option<CExpr>,
    pub distinct: bool,
}

/// A per-group expression over finalized keys and accumulators.
#[derive(Debug, Clone)]
pub enum GExpr {
    /// i-th GROUP BY key.
    Key(usize),
    /// i-th accumulator result.
    Agg(usize),
    Const(Value),
    Bool(bool),
    Binary {
        op: BinOp,
        left: Box<GExpr>,
        right: Box<GExpr>,
    },
    Not(Box<GExpr>),
    Neg(Box<GExpr>),
    IsNull {
        expr: Box<GExpr>,
        negated: bool,
    },
}

/// A named per-group output.
#[derive(Debug, Clone)]
pub struct GOutput {
    pub name: String,
    pub expr: GExpr,
}

/// The aggregate plan of a select.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Per-row group keys (empty = one global group).
    pub group_by: Vec<CExpr>,
    pub aggs: Vec<AggSpec>,
    pub outputs: Vec<GOutput>,
    pub having: Option<GExpr>,
}

/// Running state of one accumulator.
#[derive(Debug, Clone)]
pub struct Acc {
    count: u64,
    sum_int: i64,
    sum_real: f64,
    saw_real: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct_seen: Option<FxHashSet<Value>>,
}

impl Acc {
    pub fn new(distinct: bool) -> Acc {
        Acc {
            count: 0,
            sum_int: 0,
            sum_real: 0.0,
            saw_real: false,
            min: None,
            max: None,
            distinct_seen: if distinct {
                Some(FxHashSet::default())
            } else {
                None
            },
        }
    }

    /// Feed one row's argument value (`None` = `COUNT(*)` row tick).
    pub fn update(&mut self, v: Option<Value>) -> Result<()> {
        let Some(v) = v else {
            self.count += 1; // COUNT(*) counts every row
            return Ok(());
        };
        if v.is_null() {
            return Ok(()); // aggregates ignore NULLs
        }
        if let Some(seen) = &mut self.distinct_seen {
            if !seen.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match &v {
            Value::Int(i) => self.sum_int = self.sum_int.wrapping_add(*i),
            Value::Real(r) => {
                self.saw_real = true;
                self.sum_real += r.get();
            }
            Value::Str(_) => {} // SUM/AVG over strings error at finalize
            Value::Null => unreachable!(),
        }
        let replace_min = match &self.min {
            None => true,
            Some(m) => v.sql_cmp(m) == Some(Ordering::Less),
        };
        if replace_min {
            self.min = Some(v.clone());
        }
        let replace_max = match &self.max {
            None => true,
            Some(m) => v.sql_cmp(m) == Some(Ordering::Greater),
        };
        if replace_max {
            self.max = Some(v);
        }
        Ok(())
    }

    /// Final value for the given function.
    pub fn finalize(&self, func: AggFunc, arg_is_string: bool) -> Result<Value> {
        Ok(match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if arg_is_string {
                    return Err(EngineError::TypeError("SUM over strings".into()));
                } else if self.saw_real {
                    Value::real(self.sum_real + self.sum_int as f64)
                } else {
                    Value::Int(self.sum_int)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if arg_is_string {
                    return Err(EngineError::TypeError("AVG over strings".into()));
                } else {
                    Value::real((self.sum_real + self.sum_int as f64) / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        })
    }

    /// True if a string value was fed (to reject SUM/AVG cleanly).
    pub fn saw_string(&self) -> bool {
        matches!(&self.min, Some(Value::Str(_)))
    }
}

/// Evaluate a per-group scalar expression.
pub fn eval_gexpr(e: &GExpr, keys: &[Value], aggs: &[Value]) -> Result<Value> {
    Ok(match e {
        GExpr::Key(i) => keys[*i].clone(),
        GExpr::Agg(i) => aggs[*i].clone(),
        GExpr::Const(v) => v.clone(),
        GExpr::Bool(_) => {
            return Err(EngineError::TypeError(
                "boolean used as a scalar value".into(),
            ))
        }
        GExpr::Binary { op, left, right }
            if !op.is_comparison() && *op != BinOp::And && *op != BinOp::Or =>
        {
            let l = eval_gexpr(left, keys, aggs)?;
            let r = eval_gexpr(right, keys, aggs)?;
            super::exec::arith_pub(*op, l, r)?
        }
        GExpr::Neg(x) => match eval_gexpr(x, keys, aggs)? {
            Value::Null => Value::Null,
            Value::Int(v) => Value::Int(-v),
            Value::Real(v) => Value::real(-v.get()),
            v => {
                return Err(EngineError::TypeError(format!(
                    "cannot negate non-numeric value {v}"
                )))
            }
        },
        _ => {
            return Err(EngineError::TypeError(
                "predicate used in scalar context".into(),
            ))
        }
    })
}

/// Evaluate a per-group predicate (HAVING).
pub fn eval_gtruth(e: &GExpr, keys: &[Value], aggs: &[Value]) -> Result<Truth> {
    Ok(match e {
        GExpr::Bool(b) => Truth::from_bool(*b),
        GExpr::Const(Value::Null) => Truth::Unknown,
        GExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval_gtruth(left, keys, aggs)?;
                if l == Truth::False {
                    Truth::False
                } else {
                    l.and(eval_gtruth(right, keys, aggs)?)
                }
            }
            BinOp::Or => {
                let l = eval_gtruth(left, keys, aggs)?;
                if l == Truth::True {
                    Truth::True
                } else {
                    l.or(eval_gtruth(right, keys, aggs)?)
                }
            }
            op if op.is_comparison() => {
                let l = eval_gexpr(left, keys, aggs)?;
                let r = eval_gexpr(right, keys, aggs)?;
                match l.sql_cmp(&r) {
                    None => Truth::Unknown,
                    Some(ord) => Truth::from_bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::NotEq => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::LtEq => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::GtEq => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                }
            }
            _ => {
                return Err(EngineError::TypeError(
                    "arithmetic expression used as a predicate".into(),
                ))
            }
        },
        GExpr::Not(x) => eval_gtruth(x, keys, aggs)?.not(),
        GExpr::IsNull { expr, negated } => {
            let v = eval_gexpr(expr, keys, aggs)?;
            let t = Truth::from_bool(v.is_null());
            if *negated {
                t.not()
            } else {
                t
            }
        }
        _ => {
            return Err(EngineError::TypeError(
                "scalar expression used as a predicate".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_star_counts_rows_including_nulls() {
        let mut a = Acc::new(false);
        a.update(None).unwrap();
        a.update(None).unwrap();
        assert_eq!(a.finalize(AggFunc::Count, false).unwrap(), Value::Int(2));
    }

    #[test]
    fn aggregates_ignore_nulls() {
        let mut a = Acc::new(false);
        a.update(Some(Value::Int(5))).unwrap();
        a.update(Some(Value::Null)).unwrap();
        a.update(Some(Value::Int(3))).unwrap();
        assert_eq!(a.finalize(AggFunc::Count, false).unwrap(), Value::Int(2));
        assert_eq!(a.finalize(AggFunc::Sum, false).unwrap(), Value::Int(8));
        assert_eq!(a.finalize(AggFunc::Avg, false).unwrap(), Value::real(4.0));
        assert_eq!(a.finalize(AggFunc::Min, false).unwrap(), Value::Int(3));
        assert_eq!(a.finalize(AggFunc::Max, false).unwrap(), Value::Int(5));
    }

    #[test]
    fn empty_group_semantics() {
        let a = Acc::new(false);
        assert_eq!(a.finalize(AggFunc::Count, false).unwrap(), Value::Int(0));
        assert_eq!(a.finalize(AggFunc::Sum, false).unwrap(), Value::Null);
        assert_eq!(a.finalize(AggFunc::Min, false).unwrap(), Value::Null);
    }

    #[test]
    fn distinct_dedups() {
        let mut a = Acc::new(true);
        for v in [1, 1, 2, 2, 3] {
            a.update(Some(Value::Int(v))).unwrap();
        }
        assert_eq!(a.finalize(AggFunc::Count, false).unwrap(), Value::Int(3));
        assert_eq!(a.finalize(AggFunc::Sum, false).unwrap(), Value::Int(6));
    }

    #[test]
    fn mixed_int_real_sum_is_real() {
        let mut a = Acc::new(false);
        a.update(Some(Value::Int(1))).unwrap();
        a.update(Some(Value::real(0.5))).unwrap();
        assert_eq!(a.finalize(AggFunc::Sum, false).unwrap(), Value::real(1.5));
    }

    #[test]
    fn min_max_over_strings() {
        let mut a = Acc::new(false);
        a.update(Some(Value::str("b"))).unwrap();
        a.update(Some(Value::str("a"))).unwrap();
        assert_eq!(a.finalize(AggFunc::Min, true).unwrap(), Value::str("a"));
        assert_eq!(a.finalize(AggFunc::Max, true).unwrap(), Value::str("b"));
        assert!(a.finalize(AggFunc::Sum, true).is_err());
    }

    #[test]
    fn gexpr_eval() {
        let keys = vec![Value::Int(7)];
        let aggs = vec![Value::Int(3)];
        let e = GExpr::Binary {
            op: BinOp::Add,
            left: Box::new(GExpr::Key(0)),
            right: Box::new(GExpr::Agg(0)),
        };
        assert_eq!(eval_gexpr(&e, &keys, &aggs).unwrap(), Value::Int(10));
        let p = GExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(GExpr::Agg(0)),
            right: Box::new(GExpr::Const(Value::Int(2))),
        };
        assert_eq!(eval_gtruth(&p, &keys, &aggs).unwrap(), Truth::True);
    }
}
