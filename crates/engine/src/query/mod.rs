//! Query compilation and execution.
//!
//! Queries are compiled per execution against the current catalog into a
//! small tree of [`CompiledSelect`]s (one per `UNION` branch), then evaluated
//! by index-nested-loop join with SQL three-valued logic.
//!
//! The design choice that matters for TINTIN's incrementality: `EXISTS` /
//! `IN` subqueries — including union-bodied ones — are evaluated *per outer
//! row* with the outer bindings visible, so equality conditions against
//! outer columns become hash-index probes instead of materializing the
//! subquery. Derived tables in a positive `FROM` position are materialized
//! once per execution (with ad-hoc hash indexes built on demand), which is
//! cheap in TINTIN's generated SQL because positive derived tables are
//! always event-guarded (their rows are bounded by the update size).

pub mod agg;
mod compile;
mod exec;
mod explain;

pub use agg::{AggFunc, AggPlan, AggSpec, GExpr, GOutput};
pub use compile::{
    compile_query, compile_row_predicate, Access, CBody, CExpr, CInSub, COutput, CSource,
    CompiledQuery, CompiledSelect, MatRef,
};
pub use exec::{
    eval_row_predicate, eval_row_scalar, execute_query as execute, query_returns_rows, ExecCtx,
    Materialized,
};
pub use explain::explain;

use crate::database::Database;
use crate::error::Result;
use crate::value::Value;

/// Evaluate a constant (row-independent) expression, e.g. a `VALUES` item.
pub fn eval_const(db: &Database, e: &tintin_sql::Expr) -> Result<Value> {
    let ce = compile::compile_const_expr(db, e)?;
    let mut ctx = ExecCtx::new(db);
    exec::eval_scalar(&ce, &mut ctx)
}
