//! Compilation of SQL ASTs into executable plans.
//!
//! Responsibilities: name resolution (with correlated scopes), wildcard
//! expansion, conjunct placement (each `WHERE`/`ON` conjunct is attached to
//! the first `FROM` source at which all its references are bound) and index
//! selection (equality conjuncts binding an indexed column of a source to
//! already-bound expressions become hash-index probes).

use super::agg::{AggFunc, AggPlan, AggSpec, GExpr, GOutput};
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::value::Value;
use tintin_sql as sql;
use tintin_sql::{BinOp, UnOp};

/// A compiled query: union tree of compiled selects plus output metadata
/// and post-union ORDER BY / LIMIT.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub body: CBody,
    pub output_names: Vec<String>,
    pub width: usize,
    /// `(output index, descending)` sort keys.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<u64>,
}

/// Union tree over compiled selects.
#[derive(Debug, Clone)]
pub enum CBody {
    Select(CompiledSelect),
    Union {
        left: Box<CBody>,
        right: Box<CBody>,
        all: bool,
    },
}

impl CBody {
    /// All selects in the tree (order preserved); used where duplicate
    /// semantics don't matter (existence checks).
    pub fn branches(&self) -> Vec<&CompiledSelect> {
        fn walk<'a>(b: &'a CBody, out: &mut Vec<&'a CompiledSelect>) {
            match b {
                CBody::Select(s) => out.push(s),
                CBody::Union { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// One compiled `SELECT` block.
#[derive(Debug, Clone)]
pub struct CompiledSelect {
    pub sources: Vec<CSource>,
    /// Conjuncts with no references to this select's own sources; evaluated
    /// once before source iteration.
    pub pre_filters: Vec<CExpr>,
    /// Plain projection (empty when `agg` is set).
    pub output: Vec<COutput>,
    pub distinct: bool,
    /// Aggregate plan (GROUP BY / HAVING / aggregate functions).
    pub agg: Option<Box<AggPlan>>,
}

impl CompiledSelect {
    /// Output column names (plain or aggregate).
    pub fn output_names(&self) -> Vec<String> {
        match &self.agg {
            Some(plan) => plan.outputs.iter().map(|o| o.name.clone()).collect(),
            None => self.output.iter().map(|o| o.name.clone()).collect(),
        }
    }

    /// Output width.
    pub fn width(&self) -> usize {
        match &self.agg {
            Some(plan) => plan.outputs.len(),
            None => self.output.len(),
        }
    }
}

/// A projected output column.
#[derive(Debug, Clone)]
pub struct COutput {
    pub name: String,
    pub expr: CExpr,
    /// Conservative nullability (true = may be NULL). Drives the `IN`
    /// fast path.
    pub nullable: bool,
}

/// One `FROM` source with its access path and attached filters.
#[derive(Debug, Clone)]
pub struct CSource {
    pub binding: String,
    pub access: Access,
    /// Conjuncts evaluated as soon as this source is bound (excluding any
    /// used in the access path's probe key).
    pub filters: Vec<CExpr>,
}

/// Access path for a source.
#[derive(Debug, Clone)]
pub enum Access {
    /// Full scan of a base table.
    Scan { table: String },
    /// Hash-index probe on a base table; `key` expressions reference only
    /// earlier sources, outer scopes, or constants.
    Probe {
        table: String,
        index: usize,
        key: Vec<CExpr>,
    },
    /// Scan of a materialized view / derived table.
    MatScan { mat: MatRef },
    /// Probe into an ad-hoc hash index over a materialized rowset.
    MatProbe {
        mat: MatRef,
        cols: Vec<u32>,
        key: Vec<CExpr>,
    },
}

/// What gets materialized: a named view (cached per execution) or an inline
/// derived table.
#[derive(Debug, Clone)]
pub enum MatRef {
    View(String),
    Derived(Box<CompiledQuery>),
}

/// Compiled scalar / predicate expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    Const(Value),
    Bool(bool),
    /// Column reference: `level` 0 is the select being evaluated, 1 its
    /// enclosing select, and so on; `source` indexes into that select's
    /// sources; `col` is the column position.
    Col {
        level: u32,
        source: u32,
        col: u32,
    },
    Binary {
        op: BinOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
    IsNull {
        expr: Box<CExpr>,
        negated: bool,
    },
    Exists {
        branches: Vec<CompiledSelect>,
        negated: bool,
    },
    InSub(Box<CInSub>),
    InList {
        probe: Box<CExpr>,
        list: Vec<CExpr>,
        negated: bool,
    },
}

/// Compiled `IN (SELECT …)`.
#[derive(Debug, Clone)]
pub struct CInSub {
    pub probes: Vec<CExpr>,
    /// Branches with probe-equality conjuncts folded in (index-friendly).
    /// Sound only when every branch output is non-nullable and all probe
    /// values are non-NULL at runtime; `exec` checks the latter.
    pub fast: Option<Vec<CompiledSelect>>,
    /// Branches without the equality conjuncts; outputs are the subquery
    /// projection, compared with SQL 3VL row equality.
    pub slow: Vec<CompiledSelect>,
    pub negated: bool,
}

// ---------------------------------------------------------------- scopes

/// Compile-time information about one FROM source.
#[derive(Debug, Clone)]
struct SourceInfo {
    binding: String,
    cols: Vec<String>,
    not_null: Vec<bool>,
}

#[derive(Debug, Default)]
struct Scope {
    sources: Vec<SourceInfo>,
}

struct Compiler<'a> {
    db: &'a Database,
    scopes: Vec<Scope>,
}

/// Compile a closed (top-level) query.
pub fn compile_query(db: &Database, q: &sql::Query) -> Result<CompiledQuery> {
    let mut c = Compiler {
        db,
        scopes: Vec::new(),
    };
    c.compile_query(q)
}

/// Compile an expression over a single-row scope of `table` (bound as
/// `binding`); used for DELETE predicates and row-level CHECK constraints.
pub fn compile_row_predicate(
    db: &Database,
    table: &str,
    binding: &str,
    pred: &sql::Expr,
) -> Result<CExpr> {
    let t = db
        .table(table)
        .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
    let info = SourceInfo {
        binding: binding.to_string(),
        cols: t.schema.columns.iter().map(|c| c.name.clone()).collect(),
        not_null: t.schema.columns.iter().map(|c| c.not_null).collect(),
    };
    let mut c = Compiler {
        db,
        scopes: vec![Scope {
            sources: vec![info],
        }],
    };
    c.compile_expr(pred)
}

/// Compile a constant expression (no row context).
pub(crate) fn compile_const_expr(db: &Database, e: &sql::Expr) -> Result<CExpr> {
    let mut c = Compiler {
        db,
        scopes: Vec::new(),
    };
    c.compile_expr(e)
}

impl<'a> Compiler<'a> {
    fn compile_query(&mut self, q: &sql::Query) -> Result<CompiledQuery> {
        let body = self.compile_body(&q.body)?;
        // Union output metadata comes from the leftmost branch.
        let first = body
            .branches()
            .first()
            .map(|s| s.output_names())
            .unwrap_or_default();
        let width = first.len();
        // All branches must agree on width.
        for b in body.branches() {
            if b.width() != width {
                return Err(EngineError::Unsupported(format!(
                    "UNION branches have different widths ({} vs {})",
                    width,
                    b.width()
                )));
            }
        }
        // Resolve ORDER BY items to output positions (by name or 1-based
        // position).
        let mut order_by = Vec::new();
        for item in &q.order_by {
            let idx = match &item.expr {
                sql::Expr::Literal(sql::Lit::Int(k)) if *k >= 1 && (*k as usize) <= width => {
                    (*k - 1) as usize
                }
                sql::Expr::Column(c) if c.qualifier.is_none() => {
                    first.iter().position(|n| n == &c.name).ok_or_else(|| {
                        EngineError::Unsupported(format!(
                            "ORDER BY column '{}' is not an output column",
                            c.name
                        ))
                    })?
                }
                other => {
                    return Err(EngineError::Unsupported(format!(
                        "ORDER BY supports output names and positions, got: {other}"
                    )))
                }
            };
            order_by.push((idx, item.desc));
        }
        Ok(CompiledQuery {
            body,
            output_names: first,
            width,
            order_by,
            limit: q.limit,
        })
    }

    fn compile_body(&mut self, b: &sql::QueryBody) -> Result<CBody> {
        Ok(match b {
            sql::QueryBody::Select(s) => CBody::Select(self.compile_select(s)?),
            sql::QueryBody::Union { left, right, all } => CBody::Union {
                left: Box::new(self.compile_body(left)?),
                right: Box::new(self.compile_body(right)?),
                all: *all,
            },
        })
    }

    /// Compile each union branch of a subquery (for EXISTS / IN), with the
    /// current scopes visible as outer scopes.
    fn compile_subquery_branches(&mut self, q: &sql::Query) -> Result<Vec<CompiledSelect>> {
        q.selects()
            .into_iter()
            .map(|s| self.compile_select(s))
            .collect()
    }

    fn compile_select(&mut self, s: &sql::Select) -> Result<CompiledSelect> {
        // 1. Flatten joins into leaf items + ON conjuncts.
        let mut leaves = Vec::new();
        let mut conjunct_asts: Vec<&sql::Expr> = Vec::new();
        for tr in &s.from {
            flatten_table_ref(tr, &mut leaves, &mut conjunct_asts)?;
        }
        if let Some(sel) = &s.selection {
            conjunct_asts.extend(sel.conjuncts());
        }

        // 2. Resolve each leaf into a SourceInfo + access seed.
        let mut infos = Vec::with_capacity(leaves.len());
        let mut seeds: Vec<SourceSeed> = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            match leaf {
                Leaf::Named { name, alias } => {
                    let binding = alias.clone().unwrap_or_else(|| name.clone());
                    if let Some(t) = self.db.table(name) {
                        infos.push(SourceInfo {
                            binding,
                            cols: t.schema.columns.iter().map(|c| c.name.clone()).collect(),
                            not_null: t.schema.columns.iter().map(|c| c.not_null).collect(),
                        });
                        seeds.push(SourceSeed::Table(name.clone()));
                    } else if let Some((vq, vcols)) = self.db.view(name) {
                        // Views in positive FROM position: materialize.
                        // Compiled as a *closed* query (views cannot be
                        // correlated).
                        let compiled = compile_query(self.db, vq)?;
                        infos.push(SourceInfo {
                            binding,
                            cols: vcols.to_vec(),
                            not_null: vec![false; vcols.len()],
                        });
                        seeds.push(SourceSeed::Mat(MatRef::View(name.clone()), compiled.width));
                    } else {
                        return Err(EngineError::NoSuchTable(name.clone()));
                    }
                }
                Leaf::Derived { query, alias } => {
                    // Standard SQL derived tables are uncorrelated: compile
                    // closed.
                    let compiled = compile_query(self.db, query)?;
                    infos.push(SourceInfo {
                        binding: alias.clone(),
                        cols: compiled.output_names.clone(),
                        not_null: vec![false; compiled.width],
                    });
                    let w = compiled.width;
                    seeds.push(SourceSeed::Mat(MatRef::Derived(Box::new(compiled)), w));
                }
            }
        }
        // Duplicate binding names are ambiguous.
        for (i, info) in infos.iter().enumerate() {
            if infos[..i].iter().any(|p| p.binding == info.binding) {
                return Err(EngineError::DuplicateObject(format!(
                    "duplicate table binding '{}' in FROM",
                    info.binding
                )));
            }
        }

        self.scopes.push(Scope { sources: infos });
        let result = self.compile_select_inner(s, seeds, &conjunct_asts);
        self.scopes.pop();
        result
    }

    fn compile_select_inner(
        &mut self,
        s: &sql::Select,
        seeds: Vec<SourceSeed>,
        conjunct_asts: &[&sql::Expr],
    ) -> Result<CompiledSelect> {
        let nsources = seeds.len();

        // 3. Compile conjuncts and bucket them by the latest local source
        //    they reference.
        let mut pre_filters = Vec::new();
        let mut per_source: Vec<Vec<CExpr>> = (0..nsources).map(|_| Vec::new()).collect();
        for e in conjunct_asts {
            let ce = self.compile_expr(e)?;
            match max_local_source(&ce) {
                None => pre_filters.push(ce),
                Some(i) => per_source[i as usize].push(ce),
            }
        }

        // 4. Choose access paths.
        let mut sources = Vec::with_capacity(nsources);
        for (i, seed) in seeds.into_iter().enumerate() {
            let filters = std::mem::take(&mut per_source[i]);
            let binding = self.scopes.last().unwrap().sources[i].binding.clone();
            let (access, filters) = self.choose_access(i as u32, seed, filters)?;
            sources.push(CSource {
                binding,
                access,
                filters,
            });
        }

        // 5. Aggregate path: GROUP BY, HAVING, or aggregate functions in
        //    the projection.
        let has_agg = !s.group_by.is_empty()
            || s.having.is_some()
            || s.projection.iter().any(|item| match item {
                sql::SelectItem::Expr { expr, .. } => ast_has_aggregate(expr),
                _ => false,
            });
        if has_agg {
            let plan = self.compile_agg_plan(s)?;
            return Ok(CompiledSelect {
                sources,
                pre_filters,
                output: Vec::new(),
                distinct: s.distinct,
                agg: Some(Box::new(plan)),
            });
        }

        // 5'. Plain projection.
        let mut output = Vec::new();
        for item in &s.projection {
            match item {
                sql::SelectItem::Wildcard => {
                    let scope = self.scopes.last().unwrap();
                    let plan: Vec<(u32, SourceInfo)> = scope
                        .sources
                        .iter()
                        .enumerate()
                        .map(|(si, info)| (si as u32, info.clone()))
                        .collect();
                    for (si, info) in plan {
                        self.push_source_columns(&mut output, si, &info);
                    }
                }
                sql::SelectItem::QualifiedWildcard(q) => {
                    let scope = self.scopes.last().unwrap();
                    let found = scope
                        .sources
                        .iter()
                        .enumerate()
                        .find(|(_, info)| &info.binding == q)
                        .map(|(si, info)| (si as u32, info.clone()));
                    match found {
                        Some((si, info)) => self.push_source_columns(&mut output, si, &info),
                        None => return Err(EngineError::NoSuchBinding(q.clone())),
                    }
                }
                sql::SelectItem::Expr { expr, alias } => {
                    let ce = self.compile_expr(expr)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        sql::Expr::Column(c) => c.name.clone(),
                        _ => format!("col{}", output.len() + 1),
                    });
                    let nullable = self.expr_nullable(&ce);
                    output.push(COutput {
                        name,
                        expr: ce,
                        nullable,
                    });
                }
            }
        }

        Ok(CompiledSelect {
            sources,
            pre_filters,
            output,
            distinct: s.distinct,
            agg: None,
        })
    }

    /// Compile GROUP BY keys, accumulator specs and per-group outputs.
    fn compile_agg_plan(&mut self, s: &sql::Select) -> Result<AggPlan> {
        let mut key_asts: Vec<&sql::Expr> = Vec::new();
        let mut group_by = Vec::new();
        for g in &s.group_by {
            if ast_has_aggregate(g) {
                return Err(EngineError::Unsupported(
                    "aggregate functions are not allowed in GROUP BY".into(),
                ));
            }
            key_asts.push(g);
            group_by.push(self.compile_expr(g)?);
        }
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut outputs = Vec::new();
        for item in &s.projection {
            match item {
                sql::SelectItem::Expr { expr, alias } => {
                    let g = self.to_gexpr(expr, &key_asts, &mut aggs)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        sql::Expr::Column(c) => c.name.clone(),
                        sql::Expr::Func { name, .. } => name.clone(),
                        _ => format!("col{}", outputs.len() + 1),
                    });
                    outputs.push(GOutput { name, expr: g });
                }
                _ => {
                    return Err(EngineError::Unsupported(
                        "wildcards cannot be combined with GROUP BY / aggregates".into(),
                    ))
                }
            }
        }
        let having = match &s.having {
            Some(h) => Some(self.to_gexpr(h, &key_asts, &mut aggs)?),
            None => None,
        };
        Ok(AggPlan {
            group_by,
            aggs,
            outputs,
            having,
        })
    }

    /// Rewrite a projection/HAVING expression into a per-group expression:
    /// aggregate calls become accumulator slots, subexpressions equal to a
    /// GROUP BY key become key references; remaining column references are
    /// errors (standard SQL grouping rules).
    #[allow(clippy::wrong_self_convention)] // "to a group expression", not a conversion of self
    fn to_gexpr(
        &mut self,
        e: &sql::Expr,
        key_asts: &[&sql::Expr],
        aggs: &mut Vec<AggSpec>,
    ) -> Result<GExpr> {
        if let Some(i) = key_asts.iter().position(|k| *k == e) {
            return Ok(GExpr::Key(i));
        }
        Ok(match e {
            sql::Expr::Func {
                name,
                distinct,
                args,
            } => {
                let func = AggFunc::parse(name).ok_or_else(|| {
                    EngineError::Unsupported(format!("unknown function '{name}'"))
                })?;
                let arg = match args {
                    sql::FuncArgs::Star => {
                        if func != AggFunc::Count {
                            return Err(EngineError::Unsupported(format!(
                                "{name}(*) is not valid (only COUNT(*))"
                            )));
                        }
                        if *distinct {
                            return Err(EngineError::Unsupported(
                                "COUNT(DISTINCT *) is not valid".into(),
                            ));
                        }
                        None
                    }
                    sql::FuncArgs::List(list) => {
                        if list.len() != 1 {
                            return Err(EngineError::Unsupported(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        if ast_has_aggregate(&list[0]) {
                            return Err(EngineError::Unsupported(
                                "nested aggregate functions".into(),
                            ));
                        }
                        Some(self.compile_expr(&list[0])?)
                    }
                };
                let slot = aggs.len();
                aggs.push(AggSpec {
                    func,
                    arg,
                    distinct: *distinct,
                });
                GExpr::Agg(slot)
            }
            sql::Expr::Literal(l) => match l {
                sql::Lit::Int(v) => GExpr::Const(Value::Int(*v)),
                sql::Lit::Real(v) => GExpr::Const(Value::real(*v)),
                sql::Lit::Str(x) => GExpr::Const(Value::str(x.as_str())),
                sql::Lit::Null => GExpr::Const(Value::Null),
                sql::Lit::Bool(b) => GExpr::Bool(*b),
            },
            sql::Expr::Binary { op, left, right } => GExpr::Binary {
                op: *op,
                left: Box::new(self.to_gexpr(left, key_asts, aggs)?),
                right: Box::new(self.to_gexpr(right, key_asts, aggs)?),
            },
            sql::Expr::Unary { op, expr } => match op {
                UnOp::Not => GExpr::Not(Box::new(self.to_gexpr(expr, key_asts, aggs)?)),
                UnOp::Neg => GExpr::Neg(Box::new(self.to_gexpr(expr, key_asts, aggs)?)),
            },
            sql::Expr::IsNull { expr, negated } => GExpr::IsNull {
                expr: Box::new(self.to_gexpr(expr, key_asts, aggs)?),
                negated: *negated,
            },
            sql::Expr::Column(c) => {
                return Err(EngineError::Unsupported(format!(
                    "column '{c}' must appear in GROUP BY or inside an aggregate"
                )))
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "unsupported expression with aggregates: {other}"
                )))
            }
        })
    }

    fn push_source_columns(&self, output: &mut Vec<COutput>, si: u32, info: &SourceInfo) {
        for (ci, col) in info.cols.iter().enumerate() {
            output.push(COutput {
                name: col.clone(),
                expr: CExpr::Col {
                    level: 0,
                    source: si,
                    col: ci as u32,
                },
                nullable: !info.not_null[ci],
            });
        }
    }

    /// Pick an index probe for source `i` if its filters contain suitable
    /// equality conjuncts; returns the access and the residual filters.
    fn choose_access(
        &self,
        i: u32,
        seed: SourceSeed,
        filters: Vec<CExpr>,
    ) -> Result<(Access, Vec<CExpr>)> {
        // Collect equality candidates: col-of-source-i = expr-bound-earlier.
        let mut candidates: Vec<(u32, CExpr, usize)> = Vec::new(); // (col, key expr, filter idx)
        for (fi, f) in filters.iter().enumerate() {
            let CExpr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } = f
            else {
                continue;
            };
            let pair = match (&**left, &**right) {
                (
                    CExpr::Col {
                        level: 0,
                        source,
                        col,
                    },
                    rhs,
                ) if *source == i => bound_before(rhs, i).then(|| (*col, rhs.clone())),
                (
                    lhs,
                    CExpr::Col {
                        level: 0,
                        source,
                        col,
                    },
                ) if *source == i => bound_before(lhs, i).then(|| (*col, lhs.clone())),
                _ => None,
            };
            if let Some((col, key)) = pair {
                // Keep the first key expression per column.
                if !candidates.iter().any(|(c, _, _)| *c == col) {
                    candidates.push((col, key, fi));
                }
            }
        }

        match seed {
            SourceSeed::Table(table) => {
                if candidates.is_empty() {
                    return Ok((Access::Scan { table }, filters));
                }
                let t = self
                    .db
                    .table(&table)
                    .ok_or_else(|| EngineError::NoSuchTable(table.clone()))?;
                let cols: Vec<usize> = candidates.iter().map(|(c, _, _)| *c as usize).collect();
                match t.best_index(&cols) {
                    Some(ix) => {
                        let index_cols = t.indexes()[ix].columns.clone();
                        let mut key = Vec::with_capacity(index_cols.len());
                        let mut used = Vec::new();
                        for c in &index_cols {
                            let (_, k, fi) = candidates
                                .iter()
                                .find(|(cc, _, _)| *cc as usize == *c)
                                .expect("best_index only returns covered indexes");
                            key.push(k.clone());
                            used.push(*fi);
                        }
                        let residual: Vec<CExpr> = filters
                            .into_iter()
                            .enumerate()
                            .filter(|(fi, _)| !used.contains(fi))
                            .map(|(_, f)| f)
                            .collect();
                        Ok((
                            Access::Probe {
                                table,
                                index: ix,
                                key,
                            },
                            residual,
                        ))
                    }
                    None => Ok((Access::Scan { table }, filters)),
                }
            }
            SourceSeed::Mat(mat, _width) => {
                if candidates.is_empty() {
                    return Ok((Access::MatScan { mat }, filters));
                }
                // Probe on all equality columns at once; the executor builds
                // the ad-hoc hash index lazily.
                let cols: Vec<u32> = candidates.iter().map(|(c, _, _)| *c).collect();
                let key: Vec<CExpr> = candidates.iter().map(|(_, k, _)| k.clone()).collect();
                let used: Vec<usize> = candidates.iter().map(|(_, _, fi)| *fi).collect();
                let residual: Vec<CExpr> = filters
                    .into_iter()
                    .enumerate()
                    .filter(|(fi, _)| !used.contains(fi))
                    .map(|(_, f)| f)
                    .collect();
                Ok((Access::MatProbe { mat, cols, key }, residual))
            }
        }
    }

    // ------------------------------------------------------- expressions

    fn compile_expr(&mut self, e: &sql::Expr) -> Result<CExpr> {
        Ok(match e {
            sql::Expr::Literal(l) => match l {
                sql::Lit::Int(v) => CExpr::Const(Value::Int(*v)),
                sql::Lit::Real(v) => CExpr::Const(Value::real(*v)),
                sql::Lit::Str(s) => CExpr::Const(Value::str(s.as_str())),
                sql::Lit::Null => CExpr::Const(Value::Null),
                sql::Lit::Bool(b) => CExpr::Bool(*b),
            },
            sql::Expr::Column(c) => {
                let (level, source, col, _nn) = self.resolve_column(c)?;
                CExpr::Col { level, source, col }
            }
            sql::Expr::Binary { op, left, right } => CExpr::Binary {
                op: *op,
                left: Box::new(self.compile_expr(left)?),
                right: Box::new(self.compile_expr(right)?),
            },
            sql::Expr::Unary { op, expr } => match op {
                UnOp::Not => CExpr::Not(Box::new(self.compile_expr(expr)?)),
                UnOp::Neg => CExpr::Neg(Box::new(self.compile_expr(expr)?)),
            },
            sql::Expr::IsNull { expr, negated } => CExpr::IsNull {
                expr: Box::new(self.compile_expr(expr)?),
                negated: *negated,
            },
            sql::Expr::Exists { query, negated } => CExpr::Exists {
                branches: self.compile_subquery_branches(query)?,
                negated: *negated,
            },
            sql::Expr::InSubquery {
                exprs,
                query,
                negated,
            } => {
                let probes: Vec<CExpr> = exprs
                    .iter()
                    .map(|p| self.compile_expr(p))
                    .collect::<Result<_>>()?;
                let slow = self.compile_subquery_branches(query)?;
                for b in &slow {
                    if b.width() != probes.len() {
                        return Err(EngineError::Unsupported(format!(
                            "IN subquery width {} does not match probe width {}",
                            b.width(),
                            probes.len()
                        )));
                    }
                }
                // Fast path: fold probe equalities into the branches when
                // every output is statically non-nullable.
                let fast = if slow
                    .iter()
                    .all(|b| b.agg.is_none() && b.output.iter().all(|o| !o.nullable))
                {
                    Some(
                        slow.iter()
                            .map(|b| fold_probe_equalities(b, &probes))
                            .collect(),
                    )
                } else {
                    None
                };
                CExpr::InSub(Box::new(CInSub {
                    probes,
                    fast,
                    slow,
                    negated: *negated,
                }))
            }
            sql::Expr::InList {
                expr,
                list,
                negated,
            } => CExpr::InList {
                probe: Box::new(self.compile_expr(expr)?),
                list: list
                    .iter()
                    .map(|x| self.compile_expr(x))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            sql::Expr::Tuple(_) => {
                return Err(EngineError::Unsupported(
                    "row value constructor outside IN (SELECT …)".into(),
                ))
            }
            sql::Expr::Func { name, .. } => {
                return Err(if AggFunc::parse(name).is_some() {
                    EngineError::Unsupported(format!(
                        "aggregate '{name}' is only valid in the projection or                          HAVING of a grouped query"
                    ))
                } else {
                    EngineError::Unsupported(format!("unknown function '{name}'"))
                })
            }
        })
    }

    /// Resolve a column against the scope stack (innermost first).
    fn resolve_column(&self, c: &sql::ColumnRef) -> Result<(u32, u32, u32, bool)> {
        for (dist, scope) in self.scopes.iter().rev().enumerate() {
            if let Some(q) = &c.qualifier {
                if let Some((si, info)) = scope
                    .sources
                    .iter()
                    .enumerate()
                    .find(|(_, info)| &info.binding == q)
                {
                    let ci = info
                        .cols
                        .iter()
                        .position(|n| n == &c.name)
                        .ok_or_else(|| EngineError::NoSuchColumn(format!("{q}.{}", c.name)))?;
                    return Ok((dist as u32, si as u32, ci as u32, info.not_null[ci]));
                }
            } else {
                let mut hit: Option<(u32, u32, bool)> = None;
                for (si, info) in scope.sources.iter().enumerate() {
                    if let Some(ci) = info.cols.iter().position(|n| n == &c.name) {
                        if hit.is_some() {
                            return Err(EngineError::AmbiguousColumn(c.name.clone()));
                        }
                        hit = Some((si as u32, ci as u32, info.not_null[ci]));
                    }
                }
                if let Some((si, ci, nn)) = hit {
                    return Ok((dist as u32, si, ci, nn));
                }
            }
        }
        Err(if c.qualifier.is_some() {
            EngineError::NoSuchBinding(c.qualifier.clone().unwrap())
        } else {
            EngineError::NoSuchColumn(c.name.clone())
        })
    }

    /// Conservative nullability of a compiled expression.
    fn expr_nullable(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Const(v) => v.is_null(),
            CExpr::Bool(_) => false,
            CExpr::Col { level, source, col } => {
                let idx = self.scopes.len().checked_sub(1 + *level as usize);
                match idx.and_then(|i| self.scopes.get(i)) {
                    Some(scope) => scope
                        .sources
                        .get(*source as usize)
                        .map(|info| !info.not_null[*col as usize])
                        .unwrap_or(true),
                    None => true,
                }
            }
            CExpr::Binary { op, left, right }
                if !op.is_comparison() && *op != BinOp::And && *op != BinOp::Or =>
            {
                self.expr_nullable(left) || self.expr_nullable(right)
            }
            _ => true,
        }
    }
}

/// Does the expression contain an aggregate function call (shallow scan —
/// subqueries have their own aggregate scopes)?
fn ast_has_aggregate(e: &sql::Expr) -> bool {
    match e {
        sql::Expr::Func { name, .. } => AggFunc::parse(name).is_some(),
        sql::Expr::Binary { left, right, .. } => {
            ast_has_aggregate(left) || ast_has_aggregate(right)
        }
        sql::Expr::Unary { expr, .. } => ast_has_aggregate(expr),
        sql::Expr::IsNull { expr, .. } => ast_has_aggregate(expr),
        sql::Expr::InList { expr, list, .. } => {
            ast_has_aggregate(expr) || list.iter().any(ast_has_aggregate)
        }
        sql::Expr::Tuple(parts) => parts.iter().any(ast_has_aggregate),
        sql::Expr::InSubquery { exprs, .. } => exprs.iter().any(ast_has_aggregate),
        sql::Expr::Exists { .. } | sql::Expr::Column(_) | sql::Expr::Literal(_) => false,
    }
}

/// Seed for a source's access path before index selection.
enum SourceSeed {
    Table(String),
    Mat(MatRef, usize),
}

/// Flattened FROM leaf.
enum Leaf {
    Named { name: String, alias: Option<String> },
    Derived { query: sql::Query, alias: String },
}

fn flatten_table_ref<'e>(
    tr: &'e sql::TableRef,
    leaves: &mut Vec<Leaf>,
    conjuncts: &mut Vec<&'e sql::Expr>,
) -> Result<()> {
    match tr {
        sql::TableRef::Named { name, alias } => {
            leaves.push(Leaf::Named {
                name: name.clone(),
                alias: alias.clone(),
            });
            Ok(())
        }
        sql::TableRef::Join {
            left, right, on, ..
        } => {
            flatten_table_ref(left, leaves, conjuncts)?;
            flatten_table_ref(right, leaves, conjuncts)?;
            if let Some(on) = on {
                conjuncts.extend(on.conjuncts());
            }
            Ok(())
        }
        sql::TableRef::Subquery { query, alias } => {
            leaves.push(Leaf::Derived {
                query: (**query).clone(),
                alias: alias.clone(),
            });
            Ok(())
        }
    }
}

/// The largest level-0 source index referenced by `e`, or `None`.
fn max_local_source(e: &CExpr) -> Option<u32> {
    fn walk(e: &CExpr, depth: u32, max: &mut Option<u32>) {
        match e {
            CExpr::Col { level, source, .. } => {
                if *level == depth {
                    *max = Some(max.map_or(*source, |m| m.max(*source)));
                }
            }
            CExpr::Const(_) | CExpr::Bool(_) => {}
            CExpr::Binary { left, right, .. } => {
                walk(left, depth, max);
                walk(right, depth, max);
            }
            CExpr::Not(x) | CExpr::Neg(x) => walk(x, depth, max),
            CExpr::IsNull { expr, .. } => walk(expr, depth, max),
            CExpr::Exists { branches, .. } => {
                for b in branches {
                    walk_select(b, depth + 1, max);
                }
            }
            CExpr::InSub(s) => {
                for p in &s.probes {
                    walk(p, depth, max);
                }
                for b in &s.slow {
                    walk_select(b, depth + 1, max);
                }
                if let Some(fast) = &s.fast {
                    for b in fast {
                        walk_select(b, depth + 1, max);
                    }
                }
            }
            CExpr::InList { probe, list, .. } => {
                walk(probe, depth, max);
                for x in list {
                    walk(x, depth, max);
                }
            }
        }
    }
    fn walk_select(s: &CompiledSelect, depth: u32, max: &mut Option<u32>) {
        for f in &s.pre_filters {
            walk(f, depth, max);
        }
        if let Some(plan) = &s.agg {
            for k in &plan.group_by {
                walk(k, depth, max);
            }
            for a in &plan.aggs {
                if let Some(arg) = &a.arg {
                    walk(arg, depth, max);
                }
            }
        }
        for src in &s.sources {
            match &src.access {
                Access::Probe { key, .. } | Access::MatProbe { key, .. } => {
                    for k in key {
                        walk(k, depth, max);
                    }
                }
                _ => {}
            }
            for f in &src.filters {
                walk(f, depth, max);
            }
        }
        for o in &s.output {
            walk(&o.expr, depth, max);
        }
    }
    let mut max = None;
    walk(e, 0, &mut max);
    max
}

/// True if `e` references no level-0 source with index ≥ `i` (i.e., it can
/// be evaluated before source `i` is bound, given earlier sources are).
fn bound_before(e: &CExpr, i: u32) -> bool {
    match max_local_source(e) {
        None => true,
        Some(m) => m < i,
    }
}

/// Clone a branch and add `probe_k = output_k` conjuncts, shifting probe
/// levels by one (they move into the subquery scope).
fn fold_probe_equalities(branch: &CompiledSelect, probes: &[CExpr]) -> CompiledSelect {
    debug_assert!(branch.agg.is_none(), "fast path never built for aggregates");
    let mut b = branch.clone();
    for (p, o) in probes.iter().zip(&branch.output) {
        let probe_shifted = shift_levels(p, 1);
        let conj = CExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(o.expr.clone()),
            right: Box::new(probe_shifted),
        };
        // Attach like the planner would: at the last source the output
        // expression references (the probe side references only outer
        // levels after shifting).
        match max_local_source(&conj) {
            None => b.pre_filters.push(conj),
            Some(i) => {
                // Re-run index selection for this source would be ideal;
                // as a pragmatic middle ground, upgrade a Scan to a probe
                // when the output expr is a plain column of that source.
                attach_with_probe_upgrade(&mut b, i as usize, conj);
            }
        }
    }
    b
}

/// Attach a conjunct to source `i`, upgrading its access path to an index /
/// ad-hoc probe when the conjunct is `col(i) = bound-expr` and an index is
/// available. (Index metadata is not available here — the upgrade for base
/// tables is performed lazily by the executor via `Database`; here we only
/// handle materialized sources and otherwise keep the filter.)
fn attach_with_probe_upgrade(b: &mut CompiledSelect, i: usize, conj: CExpr) {
    // Try upgrading MatScan → MatProbe.
    if let CExpr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = &conj
    {
        let col_and_key = match (&**left, &**right) {
            (
                CExpr::Col {
                    level: 0,
                    source,
                    col,
                },
                rhs,
            ) if *source as usize == i && bound_before(rhs, i as u32) => Some((*col, rhs.clone())),
            (
                lhs,
                CExpr::Col {
                    level: 0,
                    source,
                    col,
                },
            ) if *source as usize == i && bound_before(lhs, i as u32) => Some((*col, lhs.clone())),
            _ => None,
        };
        if let Some((col, keyexpr)) = col_and_key {
            match &mut b.sources[i].access {
                Access::MatScan { mat } => {
                    b.sources[i].access = Access::MatProbe {
                        mat: mat.clone(),
                        cols: vec![col],
                        key: vec![keyexpr],
                    };
                    return;
                }
                Access::MatProbe { cols, key, .. } => {
                    if !cols.contains(&col) {
                        cols.push(col);
                        key.push(keyexpr);
                    }
                    return;
                }
                _ => {}
            }
        }
    }
    b.sources[i].filters.push(conj);
}

/// Shift all column references of `e` outward by `by` levels.
pub(crate) fn shift_levels(e: &CExpr, by: u32) -> CExpr {
    match e {
        CExpr::Col { level, source, col } => CExpr::Col {
            level: level + by,
            source: *source,
            col: *col,
        },
        CExpr::Const(v) => CExpr::Const(v.clone()),
        CExpr::Bool(b) => CExpr::Bool(*b),
        CExpr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(shift_levels(left, by)),
            right: Box::new(shift_levels(right, by)),
        },
        CExpr::Not(x) => CExpr::Not(Box::new(shift_levels(x, by))),
        CExpr::Neg(x) => CExpr::Neg(Box::new(shift_levels(x, by))),
        CExpr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(shift_levels(expr, by)),
            negated: *negated,
        },
        CExpr::Exists { branches, negated } => CExpr::Exists {
            branches: branches.iter().map(|b| shift_select(b, by)).collect(),
            negated: *negated,
        },
        CExpr::InSub(s) => CExpr::InSub(Box::new(CInSub {
            probes: s.probes.iter().map(|p| shift_levels(p, by)).collect(),
            fast: s
                .fast
                .as_ref()
                .map(|f| f.iter().map(|b| shift_select(b, by)).collect()),
            slow: s.slow.iter().map(|b| shift_select(b, by)).collect(),
            negated: s.negated,
        })),
        CExpr::InList {
            probe,
            list,
            negated,
        } => CExpr::InList {
            probe: Box::new(shift_levels(probe, by)),
            list: list.iter().map(|x| shift_levels(x, by)).collect(),
            negated: *negated,
        },
    }
}

fn shift_select(s: &CompiledSelect, by: u32) -> CompiledSelect {
    // Shifting a select means shifting only references that escape it, i.e.
    // levels ≥ 1 at its own depth. Implemented by shifting with an adjusted
    // threshold.
    fn shift_expr_thresh(e: &CExpr, by: u32, thresh: u32) -> CExpr {
        match e {
            CExpr::Col { level, source, col } => CExpr::Col {
                level: if *level >= thresh { level + by } else { *level },
                source: *source,
                col: *col,
            },
            CExpr::Const(v) => CExpr::Const(v.clone()),
            CExpr::Bool(b) => CExpr::Bool(*b),
            CExpr::Binary { op, left, right } => CExpr::Binary {
                op: *op,
                left: Box::new(shift_expr_thresh(left, by, thresh)),
                right: Box::new(shift_expr_thresh(right, by, thresh)),
            },
            CExpr::Not(x) => CExpr::Not(Box::new(shift_expr_thresh(x, by, thresh))),
            CExpr::Neg(x) => CExpr::Neg(Box::new(shift_expr_thresh(x, by, thresh))),
            CExpr::IsNull { expr, negated } => CExpr::IsNull {
                expr: Box::new(shift_expr_thresh(expr, by, thresh)),
                negated: *negated,
            },
            CExpr::Exists { branches, negated } => CExpr::Exists {
                branches: branches
                    .iter()
                    .map(|b| shift_select_thresh(b, by, thresh + 1))
                    .collect(),
                negated: *negated,
            },
            CExpr::InSub(s) => CExpr::InSub(Box::new(CInSub {
                probes: s
                    .probes
                    .iter()
                    .map(|p| shift_expr_thresh(p, by, thresh))
                    .collect(),
                fast: s.fast.as_ref().map(|f| {
                    f.iter()
                        .map(|b| shift_select_thresh(b, by, thresh + 1))
                        .collect()
                }),
                slow: s
                    .slow
                    .iter()
                    .map(|b| shift_select_thresh(b, by, thresh + 1))
                    .collect(),
                negated: s.negated,
            })),
            CExpr::InList {
                probe,
                list,
                negated,
            } => CExpr::InList {
                probe: Box::new(shift_expr_thresh(probe, by, thresh)),
                list: list
                    .iter()
                    .map(|x| shift_expr_thresh(x, by, thresh))
                    .collect(),
                negated: *negated,
            },
        }
    }
    fn shift_select_thresh(s: &CompiledSelect, by: u32, thresh: u32) -> CompiledSelect {
        let agg = s.agg.as_ref().map(|plan| {
            Box::new(AggPlan {
                group_by: plan
                    .group_by
                    .iter()
                    .map(|k| shift_expr_thresh(k, by, thresh))
                    .collect(),
                aggs: plan
                    .aggs
                    .iter()
                    .map(|a| AggSpec {
                        func: a.func,
                        arg: a.arg.as_ref().map(|e| shift_expr_thresh(e, by, thresh)),
                        distinct: a.distinct,
                    })
                    .collect(),
                outputs: plan.outputs.clone(),
                having: plan.having.clone(),
            })
        });
        CompiledSelect {
            sources: s
                .sources
                .iter()
                .map(|src| CSource {
                    binding: src.binding.clone(),
                    access: match &src.access {
                        Access::Scan { table } => Access::Scan {
                            table: table.clone(),
                        },
                        Access::Probe { table, index, key } => Access::Probe {
                            table: table.clone(),
                            index: *index,
                            key: key
                                .iter()
                                .map(|k| shift_expr_thresh(k, by, thresh))
                                .collect(),
                        },
                        Access::MatScan { mat } => Access::MatScan { mat: mat.clone() },
                        Access::MatProbe { mat, cols, key } => Access::MatProbe {
                            mat: mat.clone(),
                            cols: cols.clone(),
                            key: key
                                .iter()
                                .map(|k| shift_expr_thresh(k, by, thresh))
                                .collect(),
                        },
                    },
                    filters: src
                        .filters
                        .iter()
                        .map(|f| shift_expr_thresh(f, by, thresh))
                        .collect(),
                })
                .collect(),
            pre_filters: s
                .pre_filters
                .iter()
                .map(|f| shift_expr_thresh(f, by, thresh))
                .collect(),
            output: s
                .output
                .iter()
                .map(|o| COutput {
                    name: o.name.clone(),
                    expr: shift_expr_thresh(&o.expr, by, thresh),
                    nullable: o.nullable,
                })
                .collect(),
            distinct: s.distinct,
            agg,
        }
    }
    shift_select_thresh(s, by, 1)
}
