//! Engine error type.

use std::fmt;

/// Errors produced by catalog operations, DML and query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Unknown table or view.
    NoSuchTable(String),
    /// Unknown column, with the binding context in the message.
    NoSuchColumn(String),
    /// Ambiguous unqualified column.
    AmbiguousColumn(String),
    /// Unknown FROM binding used as qualifier.
    NoSuchBinding(String),
    /// An object with this name already exists.
    DuplicateObject(String),
    /// Primary-key or unique violation on insert.
    UniqueViolation {
        table: String,
        index: String,
        key: String,
    },
    /// NOT NULL column received NULL.
    NullViolation { table: String, column: String },
    /// Value could not be coerced to the column type.
    TypeError(String),
    /// Row arity mismatch on insert.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// Invalid DDL (bad column in PK/FK/index, …).
    InvalidDdl(String),
    /// Statement/feature not supported by the engine.
    Unsupported(String),
    /// SQL parse error bubbled through `execute_sql`.
    Parse(String),
    /// Row-level CHECK constraint failed.
    CheckViolation { table: String, detail: String },
    /// Transaction-state error (no open transaction, nested BEGIN, …).
    Transaction(String),
    /// First-committer-wins: a concurrent commit created or removed a row
    /// version this transaction's update depends on after the transaction's
    /// snapshot was taken. The losing transaction is rolled back; an
    /// immediate retry on a fresh snapshot may succeed.
    SerializationConflict {
        /// The table the conflicting versions live in.
        table: String,
        /// What raced: the stale deletion or the post-snapshot key.
        detail: String,
    },
    /// `ROLLBACK TO` / `RELEASE` named a savepoint that does not exist.
    NoSuchSavepoint(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTable(n) => write!(f, "no such table or view: {n}"),
            EngineError::NoSuchColumn(n) => write!(f, "no such column: {n}"),
            EngineError::AmbiguousColumn(n) => write!(f, "ambiguous column reference: {n}"),
            EngineError::NoSuchBinding(n) => write!(f, "unknown table binding: {n}"),
            EngineError::DuplicateObject(n) => write!(f, "object already exists: {n}"),
            EngineError::UniqueViolation { table, index, key } => {
                write!(f, "unique violation on {table} ({index}): key {key}")
            }
            EngineError::NullViolation { table, column } => {
                write!(f, "NULL not allowed in {table}.{column}")
            }
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "insert into {table}: expected {expected} values, got {got}"
            ),
            EngineError::InvalidDdl(m) => write!(f, "invalid DDL: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Parse(m) => write!(f, "{m}"),
            EngineError::CheckViolation { table, detail } => {
                write!(f, "CHECK constraint failed on {table}: {detail}")
            }
            EngineError::Transaction(m) => write!(f, "transaction error: {m}"),
            EngineError::SerializationConflict { table, detail } => {
                write!(
                    f,
                    "serialization conflict on {table}: {detail} (retry the transaction)"
                )
            }
            EngineError::NoSuchSavepoint(n) => write!(f, "no such savepoint: '{n}'"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<tintin_sql::ParseError> for EngineError {
    fn from(e: tintin_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
