//! Prepared queries: compile once, re-execute until the catalog changes.
//!
//! Query compilation (name resolution, conjunct placement, index selection)
//! is pure with respect to table *data* — it depends only on the catalog:
//! which tables, views and indexes exist and their column layouts. A
//! [`PreparedQuery`] therefore caches the [`CompiledQuery`] keyed on the
//! database's **catalog generation** (see
//! [`Database::catalog_generation`](crate::Database::catalog_generation)):
//! every DDL or capture change assigns the database a globally unique new
//! generation, and a cached plan is valid exactly while the generation it
//! was compiled at still matches. Generations are drawn from one global
//! counter, so a plan can never be accidentally reused against a *different*
//! database whose catalog merely evolved to the same version number — equal
//! generations imply an identical catalog (clones share the generation of
//! the state they were cloned from until their catalogs diverge).
//!
//! Re-compilation is transparent: [`PreparedQuery::resolve`] returns the
//! cached plan on a generation match and recompiles otherwise, reporting
//! which happened so callers (TINTIN's commit path) can account plan-cache
//! hits and recompiles in their statistics.
//!
//! The cache is internally synchronized (a mutex around one `Option`), so a
//! `PreparedQuery` can be shared behind `&self` across threads — the shape
//! the session layer needs, where installations live behind an `RwLock` and
//! commits resolve plans under the database write lock.

use crate::database::Database;
use crate::error::Result;
use crate::query::{compile_query, CompiledQuery};
use std::sync::{Arc, Mutex, PoisonError};
use tintin_sql as sql;

/// A query with a cached compiled plan, keyed on the catalog generation.
///
/// Create with [`Database::prepare`]; execute with
/// [`Database::query_prepared`] (or
/// [`Database::query_prepared_with_overlay`] for read-your-writes), or
/// resolve the plan explicitly with [`PreparedQuery::resolve`] to observe
/// cache behaviour.
#[derive(Debug)]
pub struct PreparedQuery {
    query: sql::Query,
    cache: Mutex<Option<CachedPlan>>,
}

#[derive(Debug, Clone)]
struct CachedPlan {
    generation: u64,
    plan: Arc<CompiledQuery>,
}

/// The outcome of resolving a [`PreparedQuery`] against a database: the
/// executable plan plus whether it had to be recompiled.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The plan, valid for the database's current catalog generation.
    pub plan: Arc<CompiledQuery>,
    /// `true` when the cached plan was stale (or absent) and the query was
    /// recompiled; `false` on a cache hit.
    pub recompiled: bool,
}

impl Clone for PreparedQuery {
    fn clone(&self) -> Self {
        // The cached plan is an `Arc`, so cloning shares the compiled tree.
        PreparedQuery {
            query: self.query.clone(),
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl PreparedQuery {
    /// Wrap a query with an empty plan cache. Prefer [`Database::prepare`],
    /// which also compiles eagerly to validate the query.
    pub fn new(query: sql::Query) -> Self {
        PreparedQuery {
            query,
            cache: Mutex::new(None),
        }
    }

    /// The SQL query this prepared statement wraps.
    pub fn query(&self) -> &sql::Query {
        &self.query
    }

    /// The generation the cached plan was compiled at, if any (primarily
    /// for tests and diagnostics).
    pub fn cached_generation(&self) -> Option<u64> {
        self.lock_cache().as_ref().map(|c| c.generation)
    }

    /// The plan for `db`'s current catalog: the cached one when the catalog
    /// generation still matches, a fresh compilation otherwise.
    pub fn resolve(&self, db: &Database) -> Result<ResolvedPlan> {
        let generation = db.catalog_generation();
        {
            let cache = self.lock_cache();
            if let Some(c) = cache.as_ref() {
                if c.generation == generation {
                    return Ok(ResolvedPlan {
                        plan: c.plan.clone(),
                        recompiled: false,
                    });
                }
            }
        }
        let plan = Arc::new(compile_query(db, &self.query)?);
        *self.lock_cache() = Some(CachedPlan {
            generation,
            plan: plan.clone(),
        });
        Ok(ResolvedPlan {
            plan,
            recompiled: true,
        })
    }

    // Poisoning is recovered from like everywhere else in the engine: the
    // cache holds only a complete (generation, plan) pair or nothing.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Option<CachedPlan>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn prepared_query_is_send_and_sync() {
        assert_send_sync::<PreparedQuery>();
    }

    #[test]
    fn resolve_caches_until_catalog_changes() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let p = db
            .prepare(&sql::parse_query("SELECT a FROM t").unwrap())
            .unwrap();
        // prepare() compiles eagerly, so the first resolve is a hit.
        assert!(!p.resolve(&db).unwrap().recompiled);
        db.execute_sql("CREATE TABLE u (b INT)").unwrap();
        assert!(p.resolve(&db).unwrap().recompiled);
        assert!(!p.resolve(&db).unwrap().recompiled);
    }
}
