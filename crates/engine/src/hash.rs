//! A small, fast, non-cryptographic hasher for index keys.
//!
//! Index keys are short `Value` sequences dominated by integers; SipHash (the
//! std default) is needlessly slow for them and HashDoS is not a concern for
//! an embedded engine. This is the FxHash multiply-xor scheme implemented
//! locally so the project stays within its approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` with the fast local hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast local hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(v: impl std::hash::Hash) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("a"), hash_of("b"));
    }

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashes_byte_tails() {
        // Exercise the chunk remainder path.
        assert_ne!(hash_of(&b"abcdefghi"[..]), hash_of(&b"abcdefghj"[..]));
    }
}
