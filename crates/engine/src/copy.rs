//! Bulk import/export of delimited text — the format family of TPC-H
//! `dbgen` (`|`-separated `.tbl` files) and plain CSV without quoting.
//!
//! Parsing is type-directed by the target table's schema: `INTEGER` and
//! `REAL` columns parse numerically, everything else loads as text; an
//! empty field is NULL. `dbgen` writes a trailing delimiter per line, which
//! is accepted.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::value::{DataType, Value};
use std::io::{BufRead, Write};

/// Options for delimited import/export.
#[derive(Debug, Clone, Copy)]
pub struct CopyOptions {
    pub delimiter: char,
    /// Accept (import) / emit (export) a trailing delimiter per line, as
    /// TPC-H dbgen does.
    pub trailing_delimiter: bool,
}

impl CopyOptions {
    /// TPC-H `dbgen` `.tbl` convention: `|` separated with a trailing `|`.
    pub fn tbl() -> CopyOptions {
        CopyOptions {
            delimiter: '|',
            trailing_delimiter: true,
        }
    }

    /// Comma-separated without quoting.
    pub fn csv() -> CopyOptions {
        CopyOptions {
            delimiter: ',',
            trailing_delimiter: false,
        }
    }
}

impl Database {
    /// Bulk-load delimited rows into `table` (bypasses event capture, like
    /// `insert_direct`). Returns the number of rows loaded.
    pub fn copy_in(
        &mut self,
        table: &str,
        reader: impl BufRead,
        options: CopyOptions,
    ) -> Result<usize> {
        let types: Vec<DataType> = {
            let t = self
                .table(table)
                .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
            t.schema.columns.iter().map(|c| c.ty).collect()
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| EngineError::Parse(format!("read error: {e}")))?;
            if line.is_empty() {
                continue;
            }
            let mut text = line.as_str();
            if options.trailing_delimiter {
                text = text.strip_suffix(options.delimiter).unwrap_or(text);
            }
            let fields: Vec<&str> = text.split(options.delimiter).collect();
            if fields.len() != types.len() {
                return Err(EngineError::Parse(format!(
                    "line {}: expected {} fields, found {}",
                    lineno + 1,
                    types.len(),
                    fields.len()
                )));
            }
            let mut row = Vec::with_capacity(fields.len());
            for (field, ty) in fields.iter().zip(&types) {
                row.push(parse_field(field, *ty, lineno + 1)?);
            }
            rows.push(row);
        }
        self.insert_direct(table, rows)
    }

    /// Export a table's live rows as delimited text (NULL = empty field).
    pub fn copy_out(
        &self,
        table: &str,
        mut writer: impl Write,
        options: CopyOptions,
    ) -> Result<usize> {
        let t = self
            .table(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        let mut n = 0;
        for (_, row) in t.scan() {
            let mut first = true;
            for v in row.iter() {
                if !first {
                    write_char(&mut writer, options.delimiter)?;
                }
                first = false;
                let s = match v {
                    Value::Null => String::new(),
                    other => other.to_string(),
                };
                writer
                    .write_all(s.as_bytes())
                    .map_err(|e| EngineError::Parse(format!("write error: {e}")))?;
            }
            if options.trailing_delimiter {
                write_char(&mut writer, options.delimiter)?;
            }
            write_char(&mut writer, '\n')?;
            n += 1;
        }
        Ok(n)
    }
}

fn write_char(w: &mut impl Write, c: char) -> Result<()> {
    let mut buf = [0u8; 4];
    w.write_all(c.encode_utf8(&mut buf).as_bytes())
        .map_err(|e| EngineError::Parse(format!("write error: {e}")))
}

fn parse_field(field: &str, ty: DataType, lineno: usize) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(field.trim().parse::<i64>().map_err(|e| {
            EngineError::Parse(format!("line {lineno}: invalid integer '{field}': {e}"))
        })?),
        DataType::Real => Value::real(field.trim().parse::<f64>().map_err(|e| {
            EngineError::Parse(format!("line {lineno}: invalid real '{field}': {e}"))
        })?),
        DataType::Text => Value::str(field),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (k INT PRIMARY KEY, name VARCHAR(20), price REAL)")
            .unwrap();
        db
    }

    #[test]
    fn loads_dbgen_style_tbl() {
        let mut db = make_db();
        let data = "1|alpha|10.5|\n2|beta|20.0|\n";
        let n = db
            .copy_in("t", data.as_bytes(), CopyOptions::tbl())
            .unwrap();
        assert_eq!(n, 2);
        let rs = db.query_sql("SELECT name FROM t WHERE k = 2").unwrap();
        assert_eq!(rs.rows[0][0], Value::str("beta"));
    }

    #[test]
    fn loads_csv_with_nulls() {
        let mut db = make_db();
        let data = "1,alpha,\n2,,2.5\n";
        db.copy_in("t", data.as_bytes(), CopyOptions::csv())
            .unwrap();
        let rs = db.query_sql("SELECT price FROM t WHERE k = 1").unwrap();
        assert_eq!(rs.rows[0][0], Value::Null);
        let rs = db.query_sql("SELECT name FROM t WHERE k = 2").unwrap();
        assert_eq!(rs.rows[0][0], Value::Null);
    }

    #[test]
    fn rejects_bad_arity_and_types() {
        let mut db = make_db();
        assert!(db
            .copy_in("t", "1|x|\n".as_bytes(), CopyOptions::tbl())
            .is_err());
        assert!(db
            .copy_in("t", "oops,alpha,1.0\n".as_bytes(), CopyOptions::csv())
            .is_err());
        assert!(db
            .copy_in("missing", "1\n".as_bytes(), CopyOptions::csv())
            .is_err());
    }

    #[test]
    fn roundtrips_through_copy_out() {
        let mut db = make_db();
        db.execute_sql("INSERT INTO t VALUES (1, 'alpha', 10.5), (2, 'beta', NULL)")
            .unwrap();
        let mut buf = Vec::new();
        let n = db.copy_out("t", &mut buf, CopyOptions::csv()).unwrap();
        assert_eq!(n, 2);

        let mut db2 = make_db();
        db2.copy_in("t", buf.as_slice(), CopyOptions::csv())
            .unwrap();
        let a = db.query_sql("SELECT * FROM t ORDER BY k").unwrap();
        let b = db2.query_sql("SELECT * FROM t ORDER BY k").unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn pk_violation_surfaces_on_load() {
        let mut db = make_db();
        let err = db
            .copy_in("t", "1,a,1.0\n1,b,2.0\n".as_bytes(), CopyOptions::csv())
            .unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation { .. }));
    }

    #[test]
    fn skips_empty_lines() {
        let mut db = make_db();
        let n = db
            .copy_in("t", "1,a,1.0\n\n2,b,2.0\n".as_bytes(), CopyOptions::csv())
            .unwrap();
        assert_eq!(n, 2);
    }
}
