//! `tintin-engine` — the relational substrate for the TINTIN reproduction.
//!
//! The EDBT 2016 TINTIN paper runs on Microsoft SQL Server; this crate
//! provides the subset of a relational DBMS that TINTIN actually relies on,
//! implemented in memory:
//!
//! * typed tables with primary keys, unique constraints, foreign-key
//!   *metadata*, row-level `CHECK`s, and hash indexes;
//! * a query evaluator for the SQL fragment TINTIN emits: select / project /
//!   join, correlated `EXISTS` / `IN` (and negations) with union-bodied
//!   subqueries, `UNION [ALL]`, `DISTINCT`, SQL three-valued logic;
//! * **event capture** — the `INSTEAD OF` trigger equivalent: once enabled
//!   for a table, `INSERT`/`DELETE` statements are redirected into `ins_T` /
//!   `del_T` event tables, leaving the base table untouched;
//! * the engine half of `safeCommit`: event normalization, the
//!   apply/undo/truncate primitives, and efficient evaluation of the
//!   generated incremental views;
//! * **concurrency primitives** — row-version MVCC: every stored row
//!   carries `(begin, end)` commit-timestamp stamps and readers filter
//!   versions by snapshot visibility instead of blocking behind commits
//!   (see [`table`]); [`SharedDatabase`], a cloneable shared handle many
//!   sessions attach to, with a commit lock that serializes committers
//!   *without* excluding readers and a snapshot registry that feeds
//!   garbage collection; and [`TxOverlay`], a transaction's private
//!   pending update that query evaluation composes onto its `BEGIN`-time
//!   snapshot so each transaction reads its own uncommitted writes and
//!   nobody else's (see [`shared`] and [`overlay`]).
//!
//! The performance property that matters for reproducing the paper's
//! numbers: correlated subqueries are evaluated per outer row with
//! hash-index probes, so TINTIN's incremental views run in time proportional
//! to the *update* size while the non-incremental assertion queries run in
//! time proportional to the *database* size.
//!
//! # Example
//!
//! ```
//! use tintin_engine::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql(
//!     "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//!      CREATE TABLE lineitem (
//!          l_orderkey INT REFERENCES orders,
//!          l_linenumber INT,
//!          PRIMARY KEY (l_orderkey, l_linenumber));
//!      INSERT INTO orders VALUES (1);
//!      INSERT INTO lineitem VALUES (1, 1), (1, 2);",
//! )
//! .unwrap();
//! let rs = db
//!     .query_sql("SELECT l_linenumber FROM lineitem WHERE l_orderkey = 1")
//!     .unwrap();
//! assert_eq!(rs.len(), 2);
//! ```

pub mod copy;
pub mod database;
pub mod error;
pub mod hash;
pub mod overlay;
pub mod prepared;
pub mod query;
pub mod result;
pub mod schema;
pub mod shared;
pub mod table;
pub mod value;

pub use copy::CopyOptions;
pub use database::{
    del_table_name, ins_table_name, Database, EventSnapshot, MvccStats, NormalizationReport,
    StatementResult, TouchedTable, UndoLog,
};
pub use error::{EngineError, Result};
pub use overlay::{DmlDelta, TableDelta, TxOverlay};
pub use prepared::{PreparedQuery, ResolvedPlan};
pub use query::{CompiledQuery, ExecCtx};
pub use result::ResultSet;
pub use schema::{Column, ForeignKey, TableSchema};
pub use shared::{SharedDatabase, Snapshot};
pub use table::{HashIndex, RowId, Table, TS_LATEST, TS_LIVE};
pub use value::{DataType, Row, Truth, Value, R64};
