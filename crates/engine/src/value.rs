//! Runtime values and storage types.
//!
//! Columns are typed ([`DataType`]); values are coerced to the column type at
//! insert time, so all comparisons and index keys within a column are
//! homogeneous. `NULL` is a first-class value with SQL semantics (comparisons
//! against it are `Unknown`, see [`Truth`]).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The three storage classes of the engine (plus NULL at the value level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Real,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INTEGER"),
            DataType::Real => write!(f, "REAL"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

impl From<tintin_sql::TypeName> for DataType {
    fn from(t: tintin_sql::TypeName) -> Self {
        match t {
            tintin_sql::TypeName::Int => DataType::Int,
            tintin_sql::TypeName::Real => DataType::Real,
            tintin_sql::TypeName::Text => DataType::Text,
        }
    }
}

/// An `f64` wrapper with total order, `Eq` and `Hash` (NaN canonicalized,
/// `-0.0` folded into `0.0`) so reals can be index keys.
#[derive(Debug, Clone, Copy)]
pub struct R64(f64);

impl R64 {
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            R64(f64::NAN) // canonical NaN bit pattern via the constant
        } else if v == 0.0 {
            R64(0.0) // folds -0.0
        } else {
            R64(v)
        }
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for R64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for R64 {}

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for R64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for R64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Ordered before all non-null values (only relevant for
    /// deterministic output ordering, not for SQL comparisons, which treat
    /// NULL as Unknown).
    Null,
    Int(i64),
    Real(R64),
    Str(Box<str>),
}

impl Value {
    pub fn real(v: f64) -> Value {
        Value::Real(R64::new(v))
    }

    pub fn str(s: impl Into<Box<str>>) -> Value {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The storage class of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Real(_) => Some(DataType::Real),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    /// Coerce for *storage* into a column of type `ty`.
    ///
    /// Lossless numeric widening (`Int` → `Real`) is performed; a real with
    /// zero fraction narrows to `Int`; anything else is a type error reported
    /// by the caller. NULL always passes.
    pub fn coerce_to(self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Some(v),
            (v @ Value::Real(_), DataType::Real) => Some(v),
            (v @ Value::Str(_), DataType::Text) => Some(v),
            (Value::Int(i), DataType::Real) => Some(Value::real(i as f64)),
            (Value::Real(r), DataType::Int) => {
                let f = r.get();
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(Value::Int(f as i64))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Coerce for an *equality probe* against a column of type `ty`.
    ///
    /// Unlike [`coerce_to`](Self::coerce_to), a failed numeric narrowing
    /// (`1.5` probed against an INT column) is not an error — it simply
    /// cannot match any stored value, signalled by `Err(NoMatch)`.
    pub fn coerce_for_probe(self, ty: DataType) -> Result<Value, ProbeMiss> {
        match (&self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(_), DataType::Int)
            | (Value::Real(_), DataType::Real)
            | (Value::Str(_), DataType::Text) => Ok(self),
            (Value::Int(i), DataType::Real) => Ok(Value::real(*i as f64)),
            (Value::Real(r), DataType::Int) => {
                let f = r.get();
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Ok(Value::Int(f as i64))
                } else {
                    Err(ProbeMiss)
                }
            }
            _ => Err(ProbeMiss),
        }
    }

    /// SQL comparison: returns `None` when either side is NULL, otherwise
    /// the ordering with numeric cross-type comparison.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Real(a), Value::Real(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Real(b)) => Some((*a as f64).total_cmp(&b.get())),
            (Value::Real(a), Value::Int(b)) => Some(a.get().total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            // Cross-class comparisons (number vs string) are type errors in
            // strict SQL; we resolve them deterministically by class so the
            // engine never panics on heterogeneous data.
            (a, b) => Some(class_rank(a).cmp(&class_rank(b))),
        }
    }
}

fn class_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Real(_) => 1,
        Value::Str(_) => 2,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Signals that an equality probe value cannot possibly match a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeMiss;

/// SQL three-valued logic truth values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    #[allow(clippy::should_implement_trait)] // 3VL negation, named after ¬
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

/// A stored row.
pub type Row = Box<[Value]>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r64_folds_negative_zero() {
        assert_eq!(R64::new(-0.0), R64::new(0.0));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        R64::new(-0.0).hash(&mut h1);
        R64::new(0.0).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn r64_nan_is_self_equal() {
        assert_eq!(R64::new(f64::NAN), R64::new(f64::NAN));
    }

    #[test]
    fn coerce_int_to_real_widens() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Real),
            Some(Value::real(3.0))
        );
    }

    #[test]
    fn coerce_real_to_int_only_when_integral() {
        assert_eq!(
            Value::real(3.0).coerce_to(DataType::Int),
            Some(Value::Int(3))
        );
        assert_eq!(Value::real(3.5).coerce_to(DataType::Int), None);
    }

    #[test]
    fn coerce_str_to_number_fails() {
        assert_eq!(Value::str("x").coerce_to(DataType::Int), None);
    }

    #[test]
    fn probe_miss_on_fractional_int_probe() {
        assert_eq!(
            Value::real(1.5).coerce_for_probe(DataType::Int),
            Err(ProbeMiss)
        );
        assert_eq!(
            Value::real(2.0).coerce_for_probe(DataType::Int),
            Ok(Value::Int(2))
        );
    }

    #[test]
    fn sql_cmp_null_is_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::real(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn truth_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }
}
