//! Table schemas: columns, keys, foreign keys.

use crate::error::{EngineError, Result};
use crate::value::DataType;
use tintin_sql as sql;

/// A column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
}

/// Declared foreign key: `columns` of this table reference `ref_columns`
/// (by default the primary key) of `ref_table`.
///
/// FKs are *metadata*: the engine does not enforce them on write (they can
/// be enforced via generated assertions, see the `tintin` crate), but the
/// EDC optimizer uses them for semantic pruning exactly as the paper does
/// for its EDC 5 example.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKey {
    pub columns: Vec<usize>,
    pub ref_table: String,
    pub ref_columns: Vec<usize>,
}

/// Schema of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Column positions of the primary key (empty = no PK).
    pub primary_key: Vec<usize>,
    /// Additional unique column sets.
    pub unique: Vec<Vec<usize>>,
    pub foreign_keys: Vec<ForeignKey>,
    /// Row-level CHECK constraints (evaluated against single rows).
    pub checks: Vec<sql::Expr>,
    /// Unresolved FK target column names, parallel to `foreign_keys`;
    /// resolved (and drained) by the catalog when the table is registered.
    fk_ref_column_names: Vec<Vec<String>>,
}

impl TableSchema {
    /// Create a schema with just columns (no keys).
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            unique: Vec::new(),
            foreign_keys: Vec::new(),
            checks: Vec::new(),
            fk_ref_column_names: Vec::new(),
        }
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Build a schema from a parsed `CREATE TABLE`.
    pub fn from_ast(ct: &sql::CreateTable) -> Result<TableSchema> {
        let mut schema = TableSchema::new(
            ct.name.clone(),
            ct.columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    ty: c.ty.into(),
                    not_null: c.not_null,
                })
                .collect(),
        );
        // Reject duplicate column names early.
        for (i, c) in ct.columns.iter().enumerate() {
            if ct.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(EngineError::InvalidDdl(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, ct.name
                )));
            }
        }
        let col_names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let col_idx = move |name: &str| -> Result<usize> {
            col_names.iter().position(|n| n == name).ok_or_else(|| {
                EngineError::InvalidDdl(format!("unknown column '{name}' in constraint of table"))
            })
        };
        // Column-level PK / UNIQUE.
        for (i, c) in ct.columns.iter().enumerate() {
            if c.primary_key {
                if !schema.primary_key.is_empty() {
                    return Err(EngineError::InvalidDdl(format!(
                        "multiple primary keys in table '{}'",
                        ct.name
                    )));
                }
                schema.primary_key = vec![i];
            }
            if c.unique {
                schema.unique.push(vec![i]);
            }
        }
        for con in &ct.constraints {
            match con {
                sql::TableConstraint::PrimaryKey(cols) => {
                    if !schema.primary_key.is_empty() {
                        return Err(EngineError::InvalidDdl(format!(
                            "multiple primary keys in table '{}'",
                            ct.name
                        )));
                    }
                    let idxs = cols
                        .iter()
                        .map(|c| col_idx(c))
                        .collect::<Result<Vec<_>>>()?;
                    for &i in &idxs {
                        schema.columns[i].not_null = true;
                    }
                    schema.primary_key = idxs;
                }
                sql::TableConstraint::Unique(cols) => {
                    let idxs = cols
                        .iter()
                        .map(|c| col_idx(c))
                        .collect::<Result<Vec<_>>>()?;
                    schema.unique.push(idxs);
                }
                sql::TableConstraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => {
                    let idxs = columns
                        .iter()
                        .map(|c| col_idx(c))
                        .collect::<Result<Vec<_>>>()?;
                    schema.foreign_keys.push(ForeignKey {
                        columns: idxs,
                        ref_table: ref_table.clone(),
                        // Referenced positions are resolved against the
                        // referenced table by the catalog (which knows it);
                        // names are kept here only transiently.
                        ref_columns: Vec::new(),
                    });
                    // Stash names for the catalog to resolve.
                    schema.fk_ref_column_names.push(ref_columns.clone());
                }
                sql::TableConstraint::Check(e) => schema.checks.push(e.clone()),
            }
        }
        Ok(schema)
    }
}

impl TableSchema {
    /// Unresolved FK target column names, parallel to `foreign_keys`.
    /// Drained by the catalog when the table is registered.
    pub(crate) fn take_fk_ref_column_names(&mut self) -> Vec<Vec<String>> {
        std::mem::take(&mut self.fk_ref_column_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tintin_sql::parse_statement;

    fn schema_of(sql_text: &str) -> TableSchema {
        let sql::Statement::CreateTable(ct) = parse_statement(sql_text).unwrap() else {
            panic!()
        };
        TableSchema::from_ast(&ct).unwrap()
    }

    #[test]
    fn builds_simple_schema() {
        let s = schema_of("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c REAL)");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.columns[0].ty, DataType::Int);
        assert!(s.columns[0].not_null);
        assert!(!s.columns[1].not_null);
        assert_eq!(s.columns[2].ty, DataType::Real);
    }

    #[test]
    fn table_level_pk_implies_not_null() {
        let s = schema_of("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))");
        assert_eq!(s.primary_key, vec![0, 1]);
        assert!(s.columns[0].not_null && s.columns[1].not_null);
    }

    #[test]
    fn column_level_pk() {
        let s = schema_of("CREATE TABLE t (a INT PRIMARY KEY, b INT)");
        assert_eq!(s.primary_key, vec![0]);
    }

    #[test]
    fn rejects_two_primary_keys() {
        let sql::Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INT PRIMARY KEY, b INT, PRIMARY KEY (b))").unwrap()
        else {
            panic!()
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn rejects_duplicate_columns() {
        let sql::Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INT, a INT)").unwrap()
        else {
            panic!()
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn rejects_unknown_pk_column() {
        let sql::Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INT, PRIMARY KEY (zzz))").unwrap()
        else {
            panic!()
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn collects_checks_and_unique() {
        let s = schema_of("CREATE TABLE t (a INT UNIQUE, b INT, UNIQUE (a, b), CHECK (a > 0))");
        assert_eq!(s.unique.len(), 2);
        assert_eq!(s.checks.len(), 1);
    }
}
