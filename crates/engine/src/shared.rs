//! The shared-database handle: one [`Database`], many concurrent clients.
//!
//! [`SharedDatabase`] is a cheaply clonable handle (`Arc<RwLock<Database>>`)
//! that lets any number of sessions attach to the same database. The locking
//! protocol is deliberately coarse and matches the paper's commit-time
//! checking model:
//!
//! * **reads** (queries, catalog inspection) take the shared read lock —
//!   any number run concurrently;
//! * **commits** take the exclusive write lock for the *whole*
//!   stage-events → `safeCommit` → apply-or-reject critical section, so a
//!   violating commit rolls back atomically without any other session ever
//!   observing intermediate state (no torn reads, no half-applied updates).
//!
//! Between statements a session holds no lock at all; a transaction's
//! pending update lives in its private [`TxOverlay`](crate::TxOverlay)
//! until commit, which is what keeps the write-lock hold time proportional
//! to the *update* size rather than the transaction's lifetime.
//!
//! Lock poisoning is deliberately recovered from ([`PoisonError::into_inner`]):
//! every multi-step mutation in the engine either completes or compensates
//! (undo logs, rollback-on-error installs), and the commit path truncates
//! the event tables on any failure — so the database a panicking thread
//! leaves behind is still structurally consistent.

use crate::database::Database;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A thread-safe, cloneable handle to one shared [`Database`].
///
/// Cloning the handle shares the database; use [`SharedDatabase::snapshot`]
/// for an independent deep copy. See the [module docs](self) for the
/// locking protocol.
///
/// # Example
///
/// ```
/// use tintin_engine::{Database, SharedDatabase};
///
/// let shared = SharedDatabase::new();
/// shared
///     .write()
///     .execute_sql("CREATE TABLE t (a INT PRIMARY KEY); INSERT INTO t VALUES (1);")
///     .unwrap();
///
/// // Another handle to the same database observes the insert.
/// let other = shared.clone();
/// assert_eq!(other.read().table("t").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    /// A shared handle over a fresh, empty database.
    pub fn new() -> Self {
        SharedDatabase::default()
    }

    /// Wrap an existing database into a shared handle, taking ownership.
    pub fn from_database(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Acquire the shared read lock (blocks while a commit is in flight).
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock (DDL, commits, bulk loads).
    pub fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// An independent deep copy of the current database state.
    pub fn snapshot(&self) -> Database {
        self.read().clone()
    }

    /// Number of live handles to this database (attached sessions plus any
    /// other clones).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Do two handles refer to the same underlying database?
    pub fn same_database(&self, other: &SharedDatabase) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl From<Database> for SharedDatabase {
    fn from(db: Database) -> Self {
        SharedDatabase::from_database(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of the handle: it must be shareable across threads.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_database_is_send_and_sync() {
        assert_send_sync::<SharedDatabase>();
        assert_send_sync::<Database>();
    }

    #[test]
    fn clones_share_state_snapshots_do_not() {
        let shared = SharedDatabase::new();
        shared
            .write()
            .execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let clone = shared.clone();
        let snapshot = shared.snapshot();
        shared
            .write()
            .execute_sql("INSERT INTO t VALUES (1)")
            .unwrap();
        assert_eq!(clone.read().table("t").unwrap().len(), 1);
        assert_eq!(snapshot.table("t").unwrap().len(), 0);
        assert!(shared.same_database(&clone));
    }

    #[test]
    fn concurrent_readers_and_writers_serialize() {
        let shared = SharedDatabase::new();
        shared
            .write()
            .execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let mut handles = Vec::new();
        for k in 0..4 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    h.write()
                        .execute_sql(&format!("INSERT INTO t VALUES ({})", k * 25 + i))
                        .unwrap();
                    // Readers interleave freely with writers.
                    assert!(h.read().table("t").unwrap().len() <= 100);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read().table("t").unwrap().len(), 100);
    }
}
