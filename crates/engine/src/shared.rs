//! The shared-database handle: one [`Database`], many concurrent clients.
//!
//! [`SharedDatabase`] is a cheaply clonable handle that lets any number of
//! sessions attach to the same database. Since the MVCC redesign the
//! protocol is *snapshot-based*, not reader-excluding:
//!
//! * **reads** execute against the row versions visible at a snapshot
//!   timestamp — either the latest committed state (autocommit reads) or the
//!   transaction's `BEGIN`-time snapshot ([`SharedDatabase::begin_snapshot`]).
//!   They take the shared read lock only to access the catalog and table
//!   memory safely; that lock is *also held by a committing session during
//!   its expensive check phase*, so readers and in-flight checked commits
//!   run concurrently. Version visibility — never the lock — is what keeps
//!   a reader's state consistent;
//! * **commits** serialize among themselves on the commit lock
//!   ([`SharedDatabase::commit_guard`]) and take the exclusive write lock
//!   only for the two short bookkeeping phases on either side of the check:
//!   conflict-detect/stage/normalize before it, version-stamp/publish/GC
//!   after it. Both are O(update size), so readers stall at most for an
//!   update-sized bookkeeping window, never for the whole check;
//! * **DDL** (and assertion installation) briefly takes both the commit
//!   lock and the write lock: a schema change may not interleave with the
//!   unlocked middle of a phased commit.
//!
//! Between statements a session holds no lock at all; a transaction's
//! pending update lives in its private [`TxOverlay`](crate::TxOverlay), and
//! its reads are pinned to the snapshot it captured at `BEGIN` — repeated
//! `SELECT`s inside a transaction return identical results even while other
//! sessions commit.
//!
//! Old versions are pruned by garbage collection
//! ([`Database::gc_versions`] / [`Database::maybe_gc_for`]) once no live
//! snapshot can see them; the registry of live snapshots behind
//! [`SharedDatabase::begin_snapshot`] supplies the horizon
//! ([`SharedDatabase::gc_horizon`]).
//!
//! Lock poisoning is deliberately recovered from ([`PoisonError::into_inner`]):
//! every multi-step mutation in the engine either completes or compensates
//! (undo logs, version un-stamping, rollback-on-error installs), and the
//! commit path truncates the event tables on any failure — so the database
//! a panicking thread leaves behind is still structurally consistent.

use crate::database::Database;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Refcounted registry of live snapshot timestamps (several transactions
/// may share a timestamp).
type SnapshotRegistry = Mutex<BTreeMap<u64, usize>>;

/// A thread-safe, cloneable handle to one shared [`Database`].
///
/// Cloning the handle shares the database; use [`SharedDatabase::snapshot`]
/// for an independent deep copy. See the [module docs](self) for the
/// locking protocol.
///
/// # Example
///
/// ```
/// use tintin_engine::{Database, SharedDatabase};
///
/// let shared = SharedDatabase::new();
/// shared
///     .write()
///     .execute_sql("CREATE TABLE t (a INT PRIMARY KEY); INSERT INTO t VALUES (1);")
///     .unwrap();
///
/// // Another handle to the same database observes the insert.
/// let other = shared.clone();
/// assert_eq!(other.read().table("t").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
    /// Serializes committers (and DDL) without excluding readers: held
    /// across the whole phased commit, while the rwlock is only taken for
    /// the short bookkeeping phases.
    commit_lock: Arc<Mutex<()>>,
    /// Live snapshot timestamps with refcounts — the GC horizon.
    snapshots: Arc<SnapshotRegistry>,
}

/// A registered `BEGIN`-time snapshot: the commit timestamp whose row
/// versions the owning transaction observes. While the value is alive,
/// garbage collection will not prune any version the snapshot can still
/// see; dropping it releases the claim.
#[derive(Debug)]
pub struct Snapshot {
    ts: u64,
    registry: Arc<SnapshotRegistry>,
}

impl Snapshot {
    /// The commit timestamp this snapshot pins.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        *reg.entry(self.ts).or_insert(0) += 1;
        Snapshot {
            ts: self.ts,
            registry: self.registry.clone(),
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(n) = reg.get_mut(&self.ts) {
            *n -= 1;
            if *n == 0 {
                reg.remove(&self.ts);
            }
        }
    }
}

impl SharedDatabase {
    /// A shared handle over a fresh, empty database.
    pub fn new() -> Self {
        SharedDatabase::default()
    }

    /// Wrap an existing database into a shared handle, taking ownership.
    pub fn from_database(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
            ..SharedDatabase::default()
        }
    }

    /// Acquire the shared read lock. Readers share it with each other *and*
    /// with the check phase of an in-flight commit; only the short
    /// bookkeeping phases of a commit (and DDL) exclude them.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock (DDL, bulk loads, and the
    /// bookkeeping phases of a commit).
    pub fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the commit lock, serializing this caller against every
    /// other committer and DDL statement. Hold it across a multi-phase
    /// critical section whose rwlock acquisitions are interleaved with
    /// unlocked (or read-locked) stretches.
    pub fn commit_guard(&self) -> MutexGuard<'_, ()> {
        self.commit_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a `BEGIN`-time snapshot of the latest committed state. The
    /// returned [`Snapshot`] pins its versions against garbage collection
    /// until dropped.
    pub fn begin_snapshot(&self) -> Snapshot {
        // Lock order: registry inside the read lock — the timestamp must be
        // registered before the read guard drops, or a commit+GC could slip
        // between reading the clock and registering it.
        let db = self.read();
        let ts = db.current_ts();
        let mut reg = self
            .snapshots
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *reg.entry(ts).or_insert(0) += 1;
        drop(db);
        Snapshot {
            ts,
            registry: self.snapshots.clone(),
        }
    }

    /// Number of live `BEGIN`-time snapshots currently pinned (summing the
    /// refcounts of every registered timestamp). An observability-oriented
    /// companion to [`SharedDatabase::oldest_snapshot`]: it answers "how
    /// many open transactions are holding the GC horizon back".
    pub fn live_snapshots(&self) -> usize {
        self.snapshots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .sum()
    }

    /// The oldest live snapshot timestamp, if any transaction holds one.
    pub fn oldest_snapshot(&self) -> Option<u64> {
        self.snapshots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .next()
            .copied()
    }

    /// The garbage-collection horizon as of commit timestamp `current`:
    /// versions dead at or before it are invisible to every live snapshot
    /// and every future one, so [`Database::gc_versions`] may prune them.
    pub fn gc_horizon(&self, current: u64) -> u64 {
        self.oldest_snapshot().unwrap_or(current).min(current)
    }

    /// An independent deep copy of the current database state.
    pub fn snapshot(&self) -> Database {
        self.read().clone()
    }

    /// Number of live handles to this database (attached sessions plus any
    /// other clones).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Do two handles refer to the same underlying database?
    pub fn same_database(&self, other: &SharedDatabase) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl From<Database> for SharedDatabase {
    fn from(db: Database) -> Self {
        SharedDatabase::from_database(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of the handle: it must be shareable across threads.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_database_is_send_and_sync() {
        assert_send_sync::<SharedDatabase>();
        assert_send_sync::<Database>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn clones_share_state_snapshots_do_not() {
        let shared = SharedDatabase::new();
        shared
            .write()
            .execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let clone = shared.clone();
        let snapshot = shared.snapshot();
        shared
            .write()
            .execute_sql("INSERT INTO t VALUES (1)")
            .unwrap();
        assert_eq!(clone.read().table("t").unwrap().len(), 1);
        assert_eq!(snapshot.table("t").unwrap().len(), 0);
        assert!(shared.same_database(&clone));
    }

    #[test]
    fn concurrent_readers_and_writers_serialize() {
        let shared = SharedDatabase::new();
        shared
            .write()
            .execute_sql("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let mut handles = Vec::new();
        for k in 0..4 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    h.write()
                        .execute_sql(&format!("INSERT INTO t VALUES ({})", k * 25 + i))
                        .unwrap();
                    // Readers interleave freely with writers.
                    assert!(h.read().table("t").unwrap().len() <= 100);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read().table("t").unwrap().len(), 100);
    }

    #[test]
    fn snapshot_registry_tracks_lifetimes() {
        let shared = SharedDatabase::new();
        assert_eq!(shared.oldest_snapshot(), None);
        assert_eq!(shared.live_snapshots(), 0);
        let s1 = shared.begin_snapshot();
        assert_eq!(s1.ts(), 0);
        assert_eq!(shared.oldest_snapshot(), Some(0));
        // A clone pins the same timestamp independently.
        let s2 = s1.clone();
        assert_eq!(shared.live_snapshots(), 2);
        drop(s1);
        assert_eq!(shared.oldest_snapshot(), Some(0));
        assert_eq!(shared.live_snapshots(), 1);
        drop(s2);
        assert_eq!(shared.oldest_snapshot(), None);
        assert_eq!(shared.live_snapshots(), 0);
        // With no snapshot open, the horizon is the current timestamp.
        assert_eq!(shared.gc_horizon(7), 7);
        let s3 = shared.begin_snapshot();
        assert_eq!(shared.gc_horizon(7), 0);
        drop(s3);
    }
}
