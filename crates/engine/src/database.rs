//! The database: catalog, DDL/DML execution, event capture and the
//! engine-level primitives behind TINTIN's `safeCommit`.
//!
//! # Event capture
//!
//! The paper installs `INSTEAD OF` triggers in SQL Server so that
//! `INSERT`/`DELETE` statements leave the target table unchanged and instead
//! record the tuples in auxiliary `ins_T` / `del_T` tables. Here the same
//! behaviour is provided natively: [`Database::enable_capture`] creates the
//! event tables, and while capture is enabled, DML against the base table is
//! redirected to them. `apply_pending` / `truncate_events` implement the
//! commit / reset steps of the `safeCommit` procedure, and `undo` supports
//! the non-incremental baseline used in the experiments.

use crate::error::{EngineError, Result};
use crate::hash::{FxHashMap, FxHashSet};
use crate::overlay::{DmlDelta, TableDelta, TxOverlay};
use crate::prepared::PreparedQuery;
use crate::query::{self};
use crate::query::{compile_query, CompiledQuery, ExecCtx};
use crate::result::ResultSet;
use crate::schema::TableSchema;
use crate::table::{RowId, Table, TS_LATEST};
use crate::value::{Row, Truth, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use tintin_sql as sql;

/// Global catalog-generation counter. Generations are unique across *all*
/// databases in the process: each catalog change takes a fresh value, so a
/// (database, generation) pair identifies one exact catalog state and a
/// cached plan keyed on the generation can never be replayed against a
/// catalog it was not compiled for — including on clones, which share the
/// generation of the state they were cloned from until their catalogs
/// diverge (any later DDL on either side takes a new unique value).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Name of the insertion-event table for `table`.
pub fn ins_table_name(table: &str) -> String {
    format!("ins_{table}")
}

/// Name of the deletion-event table for `table`.
pub fn del_table_name(table: &str) -> String {
    format!("del_{table}")
}

/// One row of the touched-event scan: `(has_insertion_events,
/// has_deletion_events, base table)` — see
/// [`Database::touched_event_tables`].
pub type TouchedTable = (bool, bool, String);

/// Look up the `prefix` (`"ins_"` / `"del_"`) event table of `base` without
/// allocating: the name is assembled in `buf` and the map is probed by
/// `&str`. The commit path walks every captured table several times per
/// commit; this keeps clean (event-free) tables at zero allocations per
/// visit.
fn event_table<'t>(
    tables: &'t FxHashMap<String, Table>,
    buf: &mut String,
    prefix: &str,
    base: &str,
) -> Option<&'t Table> {
    buf.clear();
    buf.push_str(prefix);
    buf.push_str(base);
    tables.get(buf.as_str())
}

/// A stored view definition.
#[derive(Debug, Clone)]
struct ViewDef {
    query: sql::Query,
    columns: Vec<String>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// DDL succeeded.
    Ddl,
    /// DML affected this many rows (for captured tables: recorded events).
    RowsAffected(usize),
    /// A query returned rows.
    Rows(ResultSet),
}

/// A snapshot of the event-capture state — which tables are captured plus
/// the contents of their event tables — taken by
/// [`Database::snapshot_events`] and reinstated by
/// [`Database::restore_events`] to make dry-run checks side-effect-free.
#[derive(Debug, Clone)]
pub struct EventSnapshot {
    captured: Vec<String>,
    tables: Vec<(String, Table)>,
}

/// Undo log of row-level mutations; reversing it restores the pre-mutation
/// state exactly. Returned by [`Database::apply_pending`], and also the
/// building block of the transaction savepoint stack: while a transaction is
/// open every mutation (event capture *and* direct writes to uncaptured
/// tables) is appended to the transaction's log, and a savepoint is simply
/// an offset into it.
#[derive(Debug, Default, Clone)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

#[derive(Debug, Clone)]
enum UndoOp {
    /// A row was inserted. The row is kept alongside the id so the op can
    /// still be reversed when a later compensating action shifted row ids
    /// (undo falls back to identity lookup).
    Inserted {
        table: String,
        id: RowId,
        row: Row,
    },
    Deleted {
        table: String,
        row: Row,
    },
}

impl UndoLog {
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Split off the suffix starting at `at`, leaving `self` with the
    /// prefix (the savepoint-rollback primitive).
    fn split_off(&mut self, at: usize) -> UndoLog {
        UndoLog {
            ops: self.ops.split_off(at),
        }
    }
}

/// State of an open transaction: one [`UndoLog`] accumulating every
/// mutation since `BEGIN`, plus the savepoint stack — each savepoint is a
/// name and the log length at the time it was established.
#[derive(Debug, Default, Clone)]
struct TxState {
    undo: UndoLog,
    savepoints: Vec<(String, usize)>,
}

impl TxState {
    fn log_ins(&mut self, table: &str, id: RowId, row: Row) {
        self.undo.ops.push(UndoOp::Inserted {
            table: table.to_string(),
            id,
            row,
        });
    }

    fn log_del(&mut self, table: &str, row: Row) {
        self.undo.ops.push(UndoOp::Deleted {
            table: table.to_string(),
            row,
        });
    }
}

/// Statistics from event normalization (see
/// [`Database::normalize_events`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NormalizationReport {
    /// Duplicate rows dropped from `ins_T` tables.
    pub dup_ins: usize,
    /// Duplicate rows dropped from `del_T` tables.
    pub dup_del: usize,
    /// `del_T` rows that do not exist in the base table.
    pub missing_del: usize,
    /// Identical rows present in both `ins_T` and `del_T`, cancelled.
    pub cancelled: usize,
    /// `ins_T` rows identical to an existing base row (set-semantics no-op).
    pub noop_ins: usize,
}

impl NormalizationReport {
    pub fn total(&self) -> usize {
        self.dup_ins + self.dup_del + self.missing_del + 2 * self.cancelled + self.noop_ins
    }
}

/// Row-version bookkeeping across a database: live/dead version counts and
/// the cumulative garbage-collection counters (see [`Database::mvcc_stats`]
/// and [`Database::gc_versions`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MvccStats {
    /// The last published commit timestamp.
    pub commit_ts: u64,
    /// Versions visible to the latest snapshot, across all tables.
    pub live_versions: usize,
    /// Versions retained only for older snapshots, across all tables.
    pub dead_versions: usize,
    /// Garbage-collection passes run so far (any table).
    pub gc_runs: u64,
    /// Versions pruned by garbage collection so far.
    pub gc_pruned: u64,
}

impl MvccStats {
    /// Average version-chain length: stored versions per live row (1.0 when
    /// no history is retained). `0.0` for an empty database.
    pub fn chain_length(&self) -> f64 {
        if self.live_versions == 0 {
            0.0
        } else {
            (self.live_versions + self.dead_versions) as f64 / self.live_versions as f64
        }
    }
}

/// An in-memory relational database.
///
/// `Clone` produces an independent deep copy (tables, indexes, views and
/// capture state) — handy for what-if checks, the non-incremental baseline,
/// and benchmarks.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: FxHashMap<String, Table>,
    views: FxHashMap<String, ViewDef>,
    captured: FxHashSet<String>,
    /// Open explicit transaction, if any (see [`Database::begin_transaction`]).
    tx: Option<TxState>,
    /// Catalog generation: bumped (to a globally unique value) on every
    /// DDL / capture change. Plan caches key on it — see [`PreparedQuery`].
    catalog_generation: u64,
    /// The last *published* commit timestamp. Snapshots capture this value
    /// at `BEGIN`; [`Database::apply_pending_versioned_for`] stamps new and
    /// deleted versions with `commit_ts + 1`, and
    /// [`Database::publish_commit`] makes that timestamp visible.
    commit_ts: u64,
    /// Cumulative garbage-collection pass count.
    gc_runs: u64,
    /// Cumulative versions pruned by garbage collection.
    gc_pruned: u64,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    // ------------------------------------------------------------ catalog

    /// The current catalog generation. It moves (to a globally unique
    /// value) whenever the catalog changes — tables, views or indexes
    /// created or dropped, capture enabled or disabled — and is stable
    /// across pure data changes (DML, event staging, apply/undo). Compiled
    /// plans are valid exactly as long as the generation they were compiled
    /// at matches; [`PreparedQuery`] automates that check.
    pub fn catalog_generation(&self) -> u64 {
        self.catalog_generation
    }

    fn bump_generation(&mut self) {
        self.catalog_generation = fresh_generation();
    }

    /// Look up a table (base or event) by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable table access (used by loaders; bypasses capture).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Look up a view: its query and output column names.
    pub fn view(&self, name: &str) -> Option<(&sql::Query, &[String])> {
        self.views
            .get(name)
            .map(|v| (&v.query, v.columns.as_slice()))
    }

    /// Names of all tables, sorted (deterministic).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Base tables with event capture enabled, sorted.
    pub fn captured_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.captured.iter().cloned().collect();
        names.sort();
        names
    }

    /// Is capture enabled for `table`?
    pub fn is_captured(&self, table: &str) -> bool {
        self.captured.contains(table)
    }

    /// Is `name` one of the `ins_X` / `del_X` event tables of a captured
    /// table?
    pub fn is_event_table(&self, name: &str) -> bool {
        for prefix in ["ins_", "del_"] {
            if let Some(base) = name.strip_prefix(prefix) {
                if self.captured.contains(base) {
                    return true;
                }
            }
        }
        false
    }

    /// Register a table from a schema, resolving foreign-key target columns
    /// (defaulting to the referenced table's primary key).
    pub fn create_table(&mut self, mut schema: TableSchema) -> Result<()> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(EngineError::DuplicateObject(name));
        }
        let pending = schema.take_fk_ref_column_names();
        for (fk, ref_names) in schema.foreign_keys.iter_mut().zip(pending) {
            let target = if fk.ref_table == name {
                // Self-reference resolves against this very schema.
                None
            } else {
                Some(self.tables.get(&fk.ref_table).ok_or_else(|| {
                    EngineError::InvalidDdl(format!(
                        "foreign key references unknown table '{}'",
                        fk.ref_table
                    ))
                })?)
            };
            let resolve = |n: &str| -> Result<usize> {
                let idx = match &target {
                    Some(t) => t.schema.column_index(n),
                    None => None, // resolved after the borrow below
                };
                idx.ok_or_else(|| {
                    EngineError::InvalidDdl(format!(
                        "foreign key references unknown column '{}.{}'",
                        fk.ref_table, n
                    ))
                })
            };
            fk.ref_columns = if ref_names.is_empty() {
                match &target {
                    Some(t) => {
                        if t.schema.primary_key.is_empty() {
                            return Err(EngineError::InvalidDdl(format!(
                                "foreign key references table '{}' without a primary key",
                                fk.ref_table
                            )));
                        }
                        t.schema.primary_key.clone()
                    }
                    None => Vec::new(), // self-reference: filled below
                }
            } else if target.is_some() {
                ref_names
                    .iter()
                    .map(|n| resolve(n))
                    .collect::<Result<_>>()?
            } else {
                Vec::new()
            };
            if fk.ref_columns.len() != fk.columns.len() && target.is_some() {
                return Err(EngineError::InvalidDdl(format!(
                    "foreign key column count mismatch towards '{}'",
                    fk.ref_table
                )));
            }
        }
        // Self-referencing FKs are resolved now that `schema` is complete.
        for fk in &mut schema.foreign_keys {
            if fk.ref_table == name && fk.ref_columns.is_empty() {
                fk.ref_columns = schema.primary_key.clone();
            }
        }
        let mut table = Table::new(schema);
        // Auto-index FK source columns (as e.g. MySQL does): incremental
        // checking probes child tables by their FK columns constantly.
        let fk_col_sets: Vec<Vec<usize>> = table
            .schema
            .foreign_keys
            .iter()
            .map(|fk| fk.columns.clone())
            .collect();
        for (i, cols) in fk_col_sets.into_iter().enumerate() {
            if table.indexes().iter().any(|ix| ix.columns == cols) {
                continue;
            }
            table.create_index(format!("{}_fk{}", name, i), cols, false)?;
        }
        self.tables.insert(name, table);
        self.bump_generation();
        Ok(())
    }

    /// Create a view after validating that its query compiles.
    pub fn create_view(&mut self, name: &str, query: sql::Query) -> Result<()> {
        if self.tables.contains_key(name) || self.views.contains_key(name) {
            return Err(EngineError::DuplicateObject(name.to_string()));
        }
        let compiled = compile_query(self, &query)?;
        self.views.insert(
            name.to_string(),
            ViewDef {
                query,
                columns: compiled.output_names,
            },
        );
        self.bump_generation();
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.tables.remove(name).is_none() {
            if !if_exists {
                return Err(EngineError::NoSuchTable(name.to_string()));
            }
            return Ok(());
        }
        self.captured.remove(name);
        self.bump_generation();
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.views.remove(name).is_none() {
            if !if_exists {
                return Err(EngineError::NoSuchTable(name.to_string()));
            }
            return Ok(());
        }
        self.bump_generation();
        Ok(())
    }

    /// Create a secondary index.
    pub fn create_index(
        &mut self,
        index_name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
    ) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                t.schema
                    .column_index(c)
                    .ok_or_else(|| EngineError::NoSuchColumn(format!("{table}.{c}")))
            })
            .collect::<Result<_>>()?;
        t.create_index(index_name.to_string(), cols, unique)?;
        self.bump_generation();
        Ok(())
    }

    /// Drop a secondary index (`DROP INDEX name ON table`). Indexes backing
    /// unique constraints cannot be dropped.
    pub fn drop_index(&mut self, index_name: &str, table: &str) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        t.drop_index(index_name)?;
        self.bump_generation();
        Ok(())
    }

    // ------------------------------------------------------ event capture

    /// Create `ins_T` / `del_T` event tables for `table` and start
    /// redirecting DML into them (the INSTEAD OF trigger equivalent).
    ///
    /// Event tables mirror the base columns but carry no constraints; they
    /// get non-unique indexes mirroring the base table's index columns so
    /// correlated probes into events stay O(1).
    pub fn enable_capture(&mut self, table: &str) -> Result<()> {
        let base = self
            .tables
            .get(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        if self.captured.contains(table) {
            return Err(EngineError::DuplicateObject(format!(
                "capture already enabled for '{table}'"
            )));
        }
        let mut index_sets: Vec<Vec<usize>> = Vec::new();
        for ix in base.indexes() {
            if !index_sets.contains(&ix.columns) {
                index_sets.push(ix.columns.clone());
            }
        }
        for fk in &base.schema.foreign_keys {
            if !index_sets.contains(&fk.columns) {
                index_sets.push(fk.columns.clone());
            }
        }
        let mut event_schema = TableSchema::new(
            String::new(),
            base.schema
                .columns
                .iter()
                .map(|c| crate::schema::Column {
                    name: c.name.clone(),
                    ty: c.ty,
                    not_null: false,
                })
                .collect(),
        );
        for evt_name in [ins_table_name(table), del_table_name(table)] {
            if self.tables.contains_key(&evt_name) || self.views.contains_key(&evt_name) {
                return Err(EngineError::DuplicateObject(evt_name));
            }
            event_schema.name = evt_name.clone();
            let mut t = Table::new(event_schema.clone());
            for (i, cols) in index_sets.iter().enumerate() {
                t.create_index(format!("{evt_name}_ix{i}"), cols.clone(), false)?;
            }
            self.tables.insert(evt_name, t);
        }
        self.captured.insert(table.to_string());
        self.bump_generation();
        Ok(())
    }

    /// Stop capturing and drop the event tables.
    pub fn disable_capture(&mut self, table: &str) -> Result<()> {
        if !self.captured.remove(table) {
            return Err(EngineError::NoSuchTable(format!(
                "capture not enabled for '{table}'"
            )));
        }
        self.tables.remove(&ins_table_name(table));
        self.tables.remove(&del_table_name(table));
        self.bump_generation();
        Ok(())
    }

    // ------------------------------------------------------- transactions

    /// Open an explicit transaction. While a transaction is open, every
    /// row-level mutation — event-table insertions performed by capture as
    /// well as direct writes to uncaptured tables — is recorded in an
    /// [`UndoLog`], so the whole transaction (or any suffix back to a
    /// savepoint) can be reversed. DDL is *not* logged; transactional
    /// callers (the `tintin-session` crate) reject DDL while a transaction
    /// is open.
    pub fn begin_transaction(&mut self) -> Result<()> {
        if self.tx.is_some() {
            return Err(EngineError::Transaction(
                "a transaction is already open".into(),
            ));
        }
        self.tx = Some(TxState::default());
        Ok(())
    }

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Number of logged mutations in the open transaction (0 when none).
    pub fn transaction_op_count(&self) -> usize {
        self.tx.as_ref().map_or(0, |t| t.undo.len())
    }

    /// Names of the live savepoints of the open transaction, oldest first.
    pub fn savepoint_names(&self) -> Vec<String> {
        self.tx
            .as_ref()
            .map(|t| t.savepoints.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }

    /// Close the open transaction, keeping its effects. The caller decides
    /// what "keeping" means for pending events (TINTIN's `safeCommit`
    /// either applies or discards them); this just drops the undo log.
    pub fn commit_transaction(&mut self) -> Result<()> {
        self.tx
            .take()
            .map(|_| ())
            .ok_or_else(|| EngineError::Transaction("no transaction is open".into()))
    }

    /// Abort the open transaction, reversing every mutation made since
    /// `BEGIN` (base tables *and* event tables are restored).
    pub fn rollback_transaction(&mut self) -> Result<()> {
        let tx = self
            .tx
            .take()
            .ok_or_else(|| EngineError::Transaction("no transaction is open".into()))?;
        self.undo(tx.undo);
        Ok(())
    }

    /// Establish (or move, if the name is taken) a savepoint in the open
    /// transaction.
    pub fn create_savepoint(&mut self, name: &str) -> Result<()> {
        let tx = self
            .tx
            .as_mut()
            .ok_or_else(|| EngineError::Transaction("no transaction is open".into()))?;
        let mark = tx.undo.len();
        tx.savepoints.retain(|(n, _)| n != name);
        tx.savepoints.push((name.to_string(), mark));
        Ok(())
    }

    /// Reverse every mutation made after `name` was established. The
    /// savepoint itself survives (standard SQL semantics); savepoints
    /// established after it are discarded.
    pub fn rollback_to_savepoint(&mut self, name: &str) -> Result<()> {
        let tx = self
            .tx
            .as_mut()
            .ok_or_else(|| EngineError::Transaction("no transaction is open".into()))?;
        let pos = tx
            .savepoints
            .iter()
            .rposition(|(n, _)| n == name)
            .ok_or_else(|| EngineError::NoSuchSavepoint(name.to_string()))?;
        let mark = tx.savepoints[pos].1;
        tx.savepoints.truncate(pos + 1);
        let tail = tx.undo.split_off(mark);
        self.undo(tail);
        Ok(())
    }

    /// Discard a savepoint (and any later ones), merging its changes into
    /// the enclosing scope.
    pub fn release_savepoint(&mut self, name: &str) -> Result<()> {
        let tx = self
            .tx
            .as_mut()
            .ok_or_else(|| EngineError::Transaction("no transaction is open".into()))?;
        let pos = tx
            .savepoints
            .iter()
            .rposition(|(n, _)| n == name)
            .ok_or_else(|| EngineError::NoSuchSavepoint(name.to_string()))?;
        tx.savepoints.truncate(pos);
        Ok(())
    }

    /// Pending event counts `(inserts, deletes)` summed over all captured
    /// tables, counting every live event row (including another commit's
    /// in-flight staging — see [`Database::pending_counts_at`]).
    pub fn pending_counts(&self) -> (usize, usize) {
        self.pending_counts_at(TS_LATEST)
    }

    /// [`Database::pending_counts`] over a caller-supplied touched list
    /// (from [`Database::normalize_events_touched`]).
    pub fn pending_counts_for(&self, touched: &[TouchedTable]) -> (usize, usize) {
        let mut buf = String::new();
        let mut ins = 0;
        let mut del = 0;
        for (has_ins, has_del, t) in touched {
            if *has_ins {
                ins += event_table(&self.tables, &mut buf, "ins_", t).map_or(0, |x| x.len());
            }
            if *has_del {
                del += event_table(&self.tables, &mut buf, "del_", t).map_or(0, |x| x.len());
            }
        }
        (ins, del)
    }

    /// [`Database::pending_counts`] as visible to a snapshot taken at
    /// commit timestamp `s`: event rows staged by an in-flight commit carry
    /// its unpublished timestamp and are not counted. This is what
    /// session-level observers use; the commit path itself counts its own
    /// staging with [`Database::pending_counts_for`].
    pub fn pending_counts_at(&self, s: u64) -> (usize, usize) {
        let mut buf = String::new();
        let mut ins = 0;
        let mut del = 0;
        for t in &self.captured {
            ins += event_table(&self.tables, &mut buf, "ins_", t).map_or(0, |x| x.len_at(s));
            del += event_table(&self.tables, &mut buf, "del_", t).map_or(0, |x| x.len_at(s));
        }
        (ins, del)
    }

    /// The captured base tables whose event tables hold pending rows, as
    /// `(has_insertions, has_deletions, base table)`, sorted by table name.
    /// One cheap pass — clean tables cost an allocation-free lookup each —
    /// so commit-time consumers (TINTIN's relevance index) stay
    /// O(touched) instead of re-probing event tables per check.
    pub fn touched_event_tables(&self) -> Vec<TouchedTable> {
        let mut buf = String::new();
        let mut out = Vec::new();
        for base in &self.captured {
            let ins =
                event_table(&self.tables, &mut buf, "ins_", base).is_some_and(|t| !t.is_empty());
            let del =
                event_table(&self.tables, &mut buf, "del_", base).is_some_and(|t| !t.is_empty());
            if ins || del {
                out.push((ins, del, base.clone()));
            }
        }
        out.sort_by(|a, b| a.2.cmp(&b.2));
        out
    }

    /// Remove redundant events, making insertion and deletion sets disjoint
    /// and consistent with the base tables — the precondition the EDC
    /// machinery assumes (paper §2 formulas (2)/(3)).
    pub fn normalize_events(&mut self) -> Result<NormalizationReport> {
        Ok(self.normalize_events_touched()?.0)
    }

    /// Like [`Database::normalize_events`], additionally returning the
    /// event tables that still hold rows *after* normalization (the
    /// [`Database::touched_event_tables`] shape). The commit path scans the
    /// captured set exactly once here and threads the result through
    /// checking, applying and truncating instead of re-scanning per step.
    pub fn normalize_events_touched(&mut self) -> Result<(NormalizationReport, Vec<TouchedTable>)> {
        let mut report = NormalizationReport::default();
        // Normalization is per-table; tables with no pending events have
        // nothing to normalize and are skipped without allocating.
        let pre: Vec<TouchedTable> = self.touched_event_tables();
        let mut post: Vec<TouchedTable> = Vec::with_capacity(pre.len());
        for (_, _, base_name) in pre {
            let ins_name = ins_table_name(&base_name);
            let del_name = del_table_name(&base_name);

            // 1. Dedupe within each event table.
            for (evt, counter) in [(&ins_name, 0usize), (&del_name, 1usize)] {
                let t = self.tables.get_mut(evt).expect("event table exists");
                let mut seen: FxHashSet<Row> = FxHashSet::default();
                let mut drop_ids = Vec::new();
                for (id, row) in t.scan() {
                    if !seen.insert(row.clone()) {
                        drop_ids.push(id);
                    }
                }
                for id in &drop_ids {
                    t.delete_row(*id);
                }
                if counter == 0 {
                    report.dup_ins += drop_ids.len();
                } else {
                    report.dup_del += drop_ids.len();
                }
            }

            // 2. Drop deletions of rows that don't exist in the base table.
            {
                let base = &self.tables[&base_name];
                let del = &self.tables[&del_name];
                let mut drop_ids = Vec::new();
                for (id, row) in del.scan() {
                    if base.find_identical(row).is_none() {
                        drop_ids.push(id);
                    }
                }
                report.missing_del += drop_ids.len();
                let del = self.tables.get_mut(&del_name).unwrap();
                for id in drop_ids {
                    del.delete_row(id);
                }
            }

            // 3. Cancel identical ins/del pairs (delete-then-reinsert of an
            //    existing row is a net no-op under apply order del→ins).
            {
                let ins = &self.tables[&ins_name];
                let del = &self.tables[&del_name];
                let mut pairs = Vec::new();
                for (ins_id, row) in ins.scan() {
                    if let Some(del_id) = del.find_identical(row) {
                        pairs.push((ins_id, del_id));
                    }
                }
                report.cancelled += pairs.len();
                for (ins_id, del_id) in pairs {
                    self.tables.get_mut(&ins_name).unwrap().delete_row(ins_id);
                    self.tables.get_mut(&del_name).unwrap().delete_row(del_id);
                }
            }

            // 4. Drop insertions identical to surviving base rows (no-ops
            //    under set semantics).
            {
                let base = &self.tables[&base_name];
                let ins = &self.tables[&ins_name];
                let mut drop_ids = Vec::new();
                for (id, row) in ins.scan() {
                    if base.find_identical(row).is_some() {
                        drop_ids.push(id);
                    }
                }
                report.noop_ins += drop_ids.len();
                let ins = self.tables.get_mut(&ins_name).unwrap();
                for id in drop_ids {
                    ins.delete_row(id);
                }
            }

            // What survived normalization is what the rest of the commit
            // needs to look at.
            let has_ins = !self.tables[&ins_name].is_empty();
            let has_del = !self.tables[&del_name].is_empty();
            if has_ins || has_del {
                post.push((has_ins, has_del, base_name));
            }
        }
        Ok((report, post))
    }

    /// Apply all pending events to the base tables (deletes first, then
    /// inserts) and return an undo log. Deletion events have set semantics:
    /// one `del_T` row removes *every* identical base row, matching what
    /// the read-your-writes overlay hides during the transaction. On
    /// failure (e.g. a primary-key conflict) the partial application is
    /// rolled back and the events are left untouched.
    pub fn apply_pending(&mut self) -> Result<UndoLog> {
        let touched = self.touched_event_tables();
        self.apply_pending_for(&touched)
    }

    /// [`Database::apply_pending`] over a caller-supplied touched list
    /// (from [`Database::normalize_events_touched`]), so the commit path
    /// does not re-scan the captured set. Entries whose event tables have
    /// since emptied are harmless; tables missing from the list are *not*
    /// applied.
    pub fn apply_pending_for(&mut self, touched: &[TouchedTable]) -> Result<UndoLog> {
        let mut log = UndoLog::default();
        let result = (|| -> Result<()> {
            for (_, _, base_name) in touched.iter().filter(|(_, has_del, _)| *has_del) {
                let del_rows: Vec<Row> = self.tables[&del_table_name(base_name)]
                    .scan()
                    .map(|(_, r)| r.clone())
                    .collect();
                let base = self.tables.get_mut(base_name).unwrap();
                for row in del_rows {
                    while let Some(id) = base.find_identical(&row) {
                        base.delete_row(id);
                        log.ops.push(UndoOp::Deleted {
                            table: base_name.clone(),
                            row: row.clone(),
                        });
                    }
                }
            }
            for (_, _, base_name) in touched.iter().filter(|(has_ins, _, _)| *has_ins) {
                let ins_rows: Vec<Row> = self.tables[&ins_table_name(base_name)]
                    .scan()
                    .map(|(_, r)| r.clone())
                    .collect();
                let base = self.tables.get_mut(base_name).unwrap();
                for row in ins_rows {
                    let id = base.insert(row.to_vec())?;
                    log.ops.push(UndoOp::Inserted {
                        table: base_name.clone(),
                        id,
                        row,
                    });
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(log),
            Err(e) => {
                self.undo(log);
                Err(e)
            }
        }
    }

    /// Reverse an [`UndoLog`], restoring the exact pre-mutation state.
    pub fn undo(&mut self, log: UndoLog) {
        for op in log.ops.into_iter().rev() {
            match op {
                UndoOp::Inserted { table, id, row } => {
                    let t = self
                        .tables
                        .get_mut(&table)
                        .expect("undo references live table");
                    // The id is authoritative unless a compensating action
                    // (e.g. a failed UPDATE restoring its rows) reassigned
                    // it; fall back to identity lookup, and tolerate rows
                    // that were already removed (event normalization).
                    if t.get(id).is_some_and(|r| *r == row) {
                        t.delete_row(id);
                    } else if let Some(id2) = t.find_identical(&row) {
                        t.delete_row(id2);
                    }
                }
                UndoOp::Deleted { table, row } => {
                    self.tables
                        .get_mut(&table)
                        .expect("undo references live table")
                        .insert(row.into_vec())
                        .expect("re-inserting a previously deleted row cannot fail");
                }
            }
        }
    }

    /// Empty all event tables (the last step of `safeCommit`). Already-empty
    /// event tables are left untouched (no allocation, no index clearing).
    pub fn truncate_events(&mut self) {
        let touched = self.touched_event_tables();
        self.truncate_events_for(&touched);
    }

    /// [`Database::truncate_events`] over a caller-supplied touched list
    /// (from [`Database::normalize_events_touched`]).
    pub fn truncate_events_for(&mut self, touched: &[TouchedTable]) {
        for (has_ins, has_del, t) in touched {
            if *has_ins {
                if let Some(t) = self.tables.get_mut(&ins_table_name(t)) {
                    t.truncate();
                }
            }
            if *has_del {
                if let Some(t) = self.tables.get_mut(&del_table_name(t)) {
                    t.truncate();
                }
            }
        }
    }

    /// Snapshot the event-capture state: which tables are captured and the
    /// contents of their event tables (cheap: bounded by the pending-update
    /// size). Bracketing a dry-run check with this and
    /// [`Database::restore_events`] leaves the database's event state
    /// exactly as found — hand-staged events survive, and capture enabled
    /// during the bracketed operation is disabled again.
    pub fn snapshot_events(&self) -> EventSnapshot {
        let captured = self.captured_tables();
        let mut tables = Vec::with_capacity(2 * captured.len());
        for t in &captured {
            for name in [ins_table_name(t), del_table_name(t)] {
                let table = self.tables[&name].clone();
                tables.push((name, table));
            }
        }
        EventSnapshot { captured, tables }
    }

    /// Restore a [`Database::snapshot_events`] snapshot: snapshotted event
    /// tables are replaced wholesale, and capture enabled since the
    /// snapshot (e.g. by a dry-run's staging) is disabled again, dropping
    /// its event tables.
    pub fn restore_events(&mut self, snapshot: EventSnapshot) {
        for t in self.captured_tables() {
            if !snapshot.captured.contains(&t) {
                let _ = self.disable_capture(&t);
            }
        }
        for (name, table) in snapshot.tables {
            self.tables.insert(name, table);
        }
    }

    // -------------------------------------------------------------- mvcc

    /// The last published commit timestamp. A transaction beginning now
    /// snapshots this value; every row version with
    /// `begin <= ts && ts < end` is visible to it.
    pub fn current_ts(&self) -> u64 {
        self.commit_ts
    }

    /// The timestamp the next versioned commit will stamp its row versions
    /// with. Committers are serialized (the session layer's commit lock),
    /// so this is stable between conflict detection and publication.
    pub fn next_commit_ts(&self) -> u64 {
        self.commit_ts + 1
    }

    /// Publish `ts` as the latest commit timestamp: snapshots taken from
    /// now on see the versions a versioned apply stamped with it. Called
    /// under the exclusive write lock after a successful
    /// [`Database::apply_pending_versioned_for`].
    pub fn publish_commit(&mut self, ts: u64) {
        debug_assert!(ts > self.commit_ts, "commit timestamps are monotonic");
        self.commit_ts = ts;
    }

    /// Set the commit clock directly. Recovery-only: after loading a
    /// checkpoint the clock must resume at the snapshot's timestamp, which
    /// may not be reachable through [`Database::publish_commit`]'s
    /// monotonicity contract (the fresh database starts at 0 but replayed
    /// history may begin anywhere).
    pub fn set_commit_clock(&mut self, ts: u64) {
        self.commit_ts = ts;
    }

    /// The staged, normalized effects of the in-flight commit on each
    /// touched base table, as `(table, inserted rows, deleted rows)` — the
    /// exact `ins_T`/`del_T` contents the incremental check validated.
    /// Read between [`Database::normalize_events_touched`] and
    /// [`Database::truncate_events_for`]; this is what the write-ahead log
    /// records, so recovery replays precisely what was checked.
    pub fn staged_effects_for(
        &self,
        touched: &[TouchedTable],
    ) -> Vec<(String, Vec<Row>, Vec<Row>)> {
        let mut out = Vec::with_capacity(touched.len());
        for (has_ins, has_del, base) in touched {
            let collect = |name: &str| -> Vec<Row> {
                self.tables
                    .get(name)
                    .map(|t| t.scan().map(|(_, r)| r.clone()).collect())
                    .unwrap_or_default()
            };
            let ins = if *has_ins {
                collect(&ins_table_name(base))
            } else {
                Vec::new()
            };
            let del = if *has_del {
                collect(&del_table_name(base))
            } else {
                Vec::new()
            };
            out.push((base.clone(), ins, del));
        }
        out
    }

    /// First-committer-wins conflict detection for a transaction that
    /// planned `overlay` against the snapshot taken at commit timestamp
    /// `snapshot`: every planned deletion must still target a live version
    /// that existed at the snapshot, and no planned insertion may collide
    /// on a **unique key** with a live version committed *after* the
    /// snapshot. Either collision means a concurrent transaction committed
    /// first; this one loses and reports
    /// [`EngineError::SerializationConflict`]. (A concurrent *identical*
    /// insert on a keyless table is not a conflict: set semantics make the
    /// later copy a no-op, which normalization drops.)
    ///
    /// Runs under the exclusive write lock before
    /// [`Database::stage_overlay`], with committers serialized, so the
    /// verdict cannot be invalidated before the apply.
    pub fn detect_conflicts(&self, overlay: &TxOverlay, snapshot: u64) -> Result<()> {
        let conflict = |table: &str, detail: String| {
            Err(EngineError::SerializationConflict {
                table: table.to_string(),
                detail,
            })
        };
        for table in overlay.touched_tables() {
            if self.is_event_table(&table) {
                // Hand-staged events bypass snapshot planning entirely.
                continue;
            }
            let delta = overlay.delta(&table).expect("touched implies delta");
            let Some(t) = self.tables.get(&table) else {
                return Err(EngineError::NoSuchTable(table.clone()));
            };
            for row in &delta.del {
                // The planned deletion must still have a live identical
                // target — and one that predates the snapshot: an identical
                // row re-inserted by a later committer is not the row this
                // transaction decided to delete.
                let ids = t.find_identical_all(row);
                if ids.is_empty() {
                    return conflict(
                        &table,
                        "a row this transaction deletes was removed or updated \
                         by a concurrent commit"
                            .into(),
                    );
                }
                if t.find_identical_at(row, snapshot).is_none() {
                    return conflict(
                        &table,
                        "a row this transaction deletes was re-created by a \
                         concurrent commit after this transaction began"
                            .into(),
                    );
                }
            }
            for row in &delta.ins {
                for ix in t.indexes().iter().filter(|ix| ix.unique) {
                    let Some(key) = ix.key_of(row) else { continue };
                    for &id in ix.probe(&key) {
                        let Some(base) = t.get(id) else { continue };
                        // Rows this transaction itself deletes free their
                        // keys; identical rows visible at the snapshot were
                        // already planned around (set-semantics no-op).
                        if delta.hides(base) {
                            continue;
                        }
                        if t.get_at(id, snapshot).is_some() && base.as_ref() != row.as_ref() {
                            // Visible at plan time and not identical: the
                            // statement-time unique check should have caught
                            // this; surface it as the constraint error.
                            return Err(EngineError::UniqueViolation {
                                table: table.clone(),
                                index: ix.name.clone(),
                                key: crate::table::format_key(&key),
                            });
                        }
                        if t.get_at(id, snapshot).is_none() {
                            return conflict(
                                &table,
                                format!(
                                    "key {} was inserted by a concurrent commit \
                                     after this transaction began",
                                    crate::table::format_key(&key)
                                ),
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply all pending events as *versioned* mutations stamped with
    /// commit timestamp `ts`: deletion events stamp every live identical
    /// version dead at `ts` (set semantics), insertion events create
    /// versions beginning at `ts`. Open snapshots (< `ts`) keep reading the
    /// pre-commit state; the new state becomes visible when the caller
    /// publishes `ts` ([`Database::publish_commit`]).
    ///
    /// On failure the partial apply is compensated by un-stamping — no undo
    /// log needed, since `ts` is not yet published and thus unobservable.
    pub fn apply_pending_versioned_for(&mut self, touched: &[TouchedTable], ts: u64) -> Result<()> {
        let result = (|| -> Result<()> {
            for (_, _, base_name) in touched.iter().filter(|(_, has_del, _)| *has_del) {
                let del_rows: Vec<Row> = self.tables[&del_table_name(base_name)]
                    .scan()
                    .map(|(_, r)| r.clone())
                    .collect();
                let base = self.tables.get_mut(base_name).unwrap();
                for row in del_rows {
                    for id in base.find_identical_all(&row) {
                        base.delete_row_at(id, ts);
                    }
                }
            }
            for (_, _, base_name) in touched.iter().filter(|(has_ins, _, _)| *has_ins) {
                let ins_rows: Vec<Row> = self.tables[&ins_table_name(base_name)]
                    .scan()
                    .map(|(_, r)| r.clone())
                    .collect();
                let base = self.tables.get_mut(base_name).unwrap();
                for row in ins_rows {
                    base.insert_at(row.into_vec(), ts)?;
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.unapply_version(touched, ts);
            return Err(e);
        }
        Ok(())
    }

    /// Withdraw a successful-but-unpublishable
    /// [`Database::apply_pending_versioned_for`] — the compensation a
    /// caller needs when a step *between* apply and publish fails (e.g. the
    /// durable session layer's write-ahead log append). Same contract as
    /// the internal compensation: only valid while `ts` is unpublished.
    pub fn unapply_pending_versioned_for(&mut self, touched: &[TouchedTable], ts: u64) {
        self.unapply_version(touched, ts);
    }

    /// Compensate a failed [`Database::apply_pending_versioned_for`]:
    /// versions stamped dead at `ts` come back to life, versions begun at
    /// `ts` are removed. Only valid while `ts` is unpublished.
    fn unapply_version(&mut self, touched: &[TouchedTable], ts: u64) {
        for (_, _, base_name) in touched {
            if let Some(t) = self.tables.get_mut(base_name) {
                t.unstamp_end(ts);
                t.remove_begun_at(ts);
            }
        }
    }

    /// Garbage-collect every table: prune versions no snapshot at or after
    /// `horizon` can see. `horizon` must be the oldest live snapshot
    /// timestamp, or [`Database::current_ts`] when no snapshot is open.
    /// Returns the number of versions pruned.
    pub fn gc_versions(&mut self, horizon: u64) -> usize {
        let mut pruned = 0;
        for t in self.tables.values_mut() {
            pruned += t.gc(horizon);
        }
        self.gc_runs += 1;
        self.gc_pruned += pruned as u64;
        pruned
    }

    /// Commit-piggybacked garbage collection: prune dead versions of the
    /// tables a commit touched, but only once a table has accumulated at
    /// least [`Database::GC_DEAD_THRESHOLD`] of them **and** the horizon
    /// can actually free something ([`Table::has_prunable`]) — commits on a
    /// quiet table stay O(update), and a horizon pinned by a long-lived
    /// snapshot cannot trigger a futile full-table sweep on every commit.
    /// Returns versions pruned (0 when nothing qualified).
    pub fn maybe_gc_for(&mut self, touched: &[TouchedTable], horizon: u64) -> usize {
        let mut pruned = 0;
        let mut ran = false;
        for (_, _, base_name) in touched {
            if let Some(t) = self.tables.get_mut(base_name) {
                if t.version_counts().1 >= Self::GC_DEAD_THRESHOLD && t.has_prunable(horizon) {
                    pruned += t.gc(horizon);
                    ran = true;
                }
            }
        }
        if ran {
            self.gc_runs += 1;
            self.gc_pruned += pruned as u64;
        }
        pruned
    }

    /// Dead versions a table tolerates before commit-piggybacked GC kicks
    /// in (see [`Database::maybe_gc_for`]).
    pub const GC_DEAD_THRESHOLD: usize = 256;

    /// Aggregate row-version statistics: live/dead counts across all
    /// tables plus the cumulative GC counters.
    pub fn mvcc_stats(&self) -> MvccStats {
        let mut stats = MvccStats {
            commit_ts: self.commit_ts,
            gc_runs: self.gc_runs,
            gc_pruned: self.gc_pruned,
            ..MvccStats::default()
        };
        for t in self.tables.values() {
            let (live, dead) = t.version_counts();
            stats.live_versions += live;
            stats.dead_versions += dead;
        }
        stats
    }

    // ----------------------------------------------------------- queries

    /// Compile and run a query.
    pub fn query(&self, q: &sql::Query) -> Result<ResultSet> {
        self.query_with_overlay(q, None)
    }

    /// Compile and run a query with an optional transaction overlay visible:
    /// base-table accesses then yield `(base − overlay.del) ∪ overlay.ins`,
    /// giving the calling transaction read-your-writes over its own pending
    /// updates without publishing them to anyone else.
    pub fn query_with_overlay(
        &self,
        q: &sql::Query,
        overlay: Option<&TxOverlay>,
    ) -> Result<ResultSet> {
        self.query_with_overlay_at(q, overlay, TS_LATEST)
    }

    /// [`Database::query_with_overlay`] pinned to the row versions visible
    /// at commit timestamp `snapshot`: the full MVCC visible-state equation
    /// `(snapshot − overlay.del) ∪ overlay.ins`. Pass
    /// [`TS_LATEST`] for the live state.
    pub fn query_with_overlay_at(
        &self,
        q: &sql::Query,
        overlay: Option<&TxOverlay>,
        snapshot: u64,
    ) -> Result<ResultSet> {
        let compiled = compile_query(self, q)?;
        self.execute_plan_at(&compiled, overlay, snapshot)
    }

    /// Prepare a query: compile it against the current catalog and wrap it
    /// with a generation-keyed plan cache. The prepared query re-executes
    /// without recompilation until the catalog changes (DDL, capture),
    /// after which [`PreparedQuery::resolve`] recompiles transparently.
    pub fn prepare(&self, q: &sql::Query) -> Result<PreparedQuery> {
        let prepared = PreparedQuery::new(q.clone());
        // Eager compilation validates the query now (matching `query`'s
        // error timing) and warms the cache.
        prepared.resolve(self)?;
        Ok(prepared)
    }

    /// Run an already-compiled plan. The caller is responsible for the plan
    /// being compiled against this database's current catalog generation —
    /// [`PreparedQuery::resolve`] guarantees that.
    pub fn execute_plan(
        &self,
        plan: &CompiledQuery,
        overlay: Option<&TxOverlay>,
    ) -> Result<ResultSet> {
        self.execute_plan_at(plan, overlay, TS_LATEST)
    }

    /// [`Database::execute_plan`] against the row versions visible at
    /// commit timestamp `snapshot` — how prepared vio-view plans and
    /// session reads execute against a transaction's `BEGIN`-time state.
    pub fn execute_plan_at(
        &self,
        plan: &CompiledQuery,
        overlay: Option<&TxOverlay>,
        snapshot: u64,
    ) -> Result<ResultSet> {
        let mut ctx = match overlay {
            Some(o) => ExecCtx::with_overlay_at(self, o, snapshot),
            None => ExecCtx::at_snapshot(self, snapshot),
        };
        let rows = query::execute(plan, &mut ctx)?;
        Ok(ResultSet {
            columns: plan.output_names.clone(),
            rows,
        })
    }

    /// Does the plan return at least one row? Short-circuits on the first
    /// hit — the fast path for emptiness checks, which never allocates a
    /// result set.
    pub fn plan_returns_rows(
        &self,
        plan: &CompiledQuery,
        overlay: Option<&TxOverlay>,
    ) -> Result<bool> {
        let mut ctx = match overlay {
            Some(o) => ExecCtx::with_overlay(self, o),
            None => ExecCtx::new(self),
        };
        query::query_returns_rows(plan, &mut ctx)
    }

    /// Run a prepared query, recompiling first if the catalog changed.
    pub fn query_prepared(&self, p: &PreparedQuery) -> Result<ResultSet> {
        self.query_prepared_with_overlay(p, None)
    }

    /// Run a prepared query with a transaction overlay visible
    /// (read-your-writes, like [`Database::query_with_overlay`]). The
    /// overlay affects only execution, never the cached plan: compilation
    /// depends on the catalog alone.
    pub fn query_prepared_with_overlay(
        &self,
        p: &PreparedQuery,
        overlay: Option<&TxOverlay>,
    ) -> Result<ResultSet> {
        self.query_prepared_with_overlay_at(p, overlay, TS_LATEST)
    }

    /// [`Database::query_prepared_with_overlay`] pinned to the row versions
    /// visible at commit timestamp `snapshot`: the cached plan (compilation
    /// depends on the catalog alone) runs against a `BEGIN`-time state.
    pub fn query_prepared_with_overlay_at(
        &self,
        p: &PreparedQuery,
        overlay: Option<&TxOverlay>,
        snapshot: u64,
    ) -> Result<ResultSet> {
        let resolved = p.resolve(self)?;
        self.execute_plan_at(&resolved.plan, overlay, snapshot)
    }

    /// Parse and run a single query string.
    pub fn query_sql(&self, sql_text: &str) -> Result<ResultSet> {
        let q = sql::parse_query(sql_text)?;
        self.query(&q)
    }

    /// Compile a query without running it (validation).
    pub fn compile(&self, q: &sql::Query) -> Result<CompiledQuery> {
        compile_query(self, q)
    }

    /// Render the access-path plan of a query (`EXPLAIN`).
    pub fn explain(&self, q: &sql::Query) -> Result<String> {
        let compiled = compile_query(self, q)?;
        Ok(query::explain(self, &compiled))
    }

    /// Parse and explain a query string.
    pub fn explain_sql(&self, sql_text: &str) -> Result<String> {
        let q = sql::parse_query(sql_text)?;
        self.explain(&q)
    }

    // --------------------------------------------------------- statements

    /// Parse and execute a script of semicolon-separated statements.
    pub fn execute_sql(&mut self, script: &str) -> Result<Vec<StatementResult>> {
        let stmts = sql::parse_statements(script)?;
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    /// Execute a single parsed statement.
    pub fn execute(&mut self, stmt: &sql::Statement) -> Result<StatementResult> {
        match stmt {
            sql::Statement::CreateTable(ct) => {
                let schema = TableSchema::from_ast(ct)?;
                self.create_table(schema)?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::CreateView(cv) => {
                self.create_view(&cv.name, cv.query.clone())?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::CreateIndex(ci) => {
                self.create_index(&ci.name, &ci.table, &ci.columns, ci.unique)?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::CreateAssertion(_)
            | sql::Statement::DropAssertion { .. }
            | sql::Statement::ExplainAssertion { .. } => Err(EngineError::Unsupported(
                "assertions are managed by the tintin crate (Tintin::install), \
                 not by the raw engine"
                    .into(),
            )),
            sql::Statement::DropTable { name, if_exists } => {
                self.drop_table(name, *if_exists)?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::DropView { name, if_exists } => {
                self.drop_view(name, *if_exists)?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::DropIndex { name, table } => {
                self.drop_index(name, table)?;
                Ok(StatementResult::Ddl)
            }
            sql::Statement::TruncateTable { name } => {
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| EngineError::NoSuchTable(name.clone()))?;
                t.truncate();
                Ok(StatementResult::Ddl)
            }
            sql::Statement::Insert(ins) => {
                let n = self.exec_insert(ins)?;
                Ok(StatementResult::RowsAffected(n))
            }
            sql::Statement::Delete(del) => {
                let n = self.exec_delete(del)?;
                Ok(StatementResult::RowsAffected(n))
            }
            sql::Statement::Update(upd) => {
                let n = self.exec_update(upd)?;
                Ok(StatementResult::RowsAffected(n))
            }
            sql::Statement::Query(q) => Ok(StatementResult::Rows(self.query(q)?)),
            sql::Statement::Begin
            | sql::Statement::Commit
            | sql::Statement::Rollback { .. }
            | sql::Statement::Savepoint { .. }
            | sql::Statement::Release { .. } => Err(EngineError::Unsupported(
                "transaction control is managed by the tintin-session crate \
                 (Session::execute), not by the raw engine"
                    .into(),
            )),
        }
    }

    fn exec_insert(&mut self, ins: &sql::Insert) -> Result<usize> {
        let validated = self.insert_source_rows(ins, None, TS_LATEST)?;
        self.apply_validated_inserts(&ins.table, validated)
    }

    /// Compute the fully-positional, schema-validated, constraint-checked
    /// rows an `INSERT` statement proposes, without applying them. The
    /// optional overlay makes `INSERT … SELECT` sources and `CHECK`
    /// subqueries observe the calling transaction's pending updates, and
    /// `snapshot` pins which committed versions they see.
    fn insert_source_rows(
        &self,
        ins: &sql::Insert,
        overlay: Option<&TxOverlay>,
        snapshot: u64,
    ) -> Result<Vec<Row>> {
        let target = self
            .tables
            .get(&ins.table)
            .ok_or_else(|| EngineError::NoSuchTable(ins.table.clone()))?;
        let arity = target.schema.arity();
        // Map the optional column list to positions.
        let positions: Option<Vec<usize>> = match &ins.columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| {
                        target.schema.column_index(c).ok_or_else(|| {
                            EngineError::NoSuchColumn(format!("{}.{}", ins.table, c))
                        })
                    })
                    .collect::<Result<_>>()?,
            ),
        };
        let raw_rows: Vec<Vec<Value>> = match &ins.source {
            sql::InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(self.eval_const_expr(e)?);
                    }
                    out.push(vals);
                }
                out
            }
            sql::InsertSource::Query(q) => self
                .query_with_overlay_at(q, overlay, snapshot)?
                .rows
                .into_iter()
                .map(|r| r.into_vec())
                .collect(),
        };
        let mut full_rows = Vec::with_capacity(raw_rows.len());
        for vals in raw_rows {
            let row = match &positions {
                None => vals,
                Some(pos) => {
                    if vals.len() != pos.len() {
                        return Err(EngineError::ArityMismatch {
                            table: ins.table.clone(),
                            expected: pos.len(),
                            got: vals.len(),
                        });
                    }
                    let mut row = vec![Value::Null; arity];
                    for (p, v) in pos.iter().zip(vals) {
                        row[*p] = v;
                    }
                    row
                }
            };
            full_rows.push(row);
        }
        // Validate (arity/types/not-null/checks) against the *base* schema
        // even when capture is on, so errors surface at statement time.
        let validated: Vec<Row> = full_rows
            .into_iter()
            .map(|r| target.validate(r))
            .collect::<Result<_>>()?;
        self.check_row_constraints(&ins.table, &validated, overlay, snapshot)?;
        Ok(validated)
    }

    /// Insert fully-positional rows, honouring event capture.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        // Validate (arity/types/not-null/checks) against the *base* schema
        // even when capture is on, so errors surface at statement time.
        let validated: Vec<Row> = {
            let t = self
                .tables
                .get(table)
                .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
            rows.into_iter()
                .map(|r| t.validate(r))
                .collect::<Result<_>>()?
        };
        self.check_row_constraints(table, &validated, None, TS_LATEST)?;
        self.apply_validated_inserts(table, validated)
    }

    /// Apply already-validated rows to `table`, honouring event capture and
    /// the open engine transaction's undo log.
    fn apply_validated_inserts(&mut self, table: &str, validated: Vec<Row>) -> Result<usize> {
        let n = validated.len();
        let is_captured = self.captured.contains(table);
        let Database { tables, tx, .. } = self;
        if is_captured {
            let evt_name = ins_table_name(table);
            let evt = tables
                .get_mut(&evt_name)
                .expect("capture implies event table");
            for row in validated {
                // The row is only cloned when a transaction needs it for
                // the undo log; otherwise it moves straight into storage.
                if let Some(tx) = tx.as_mut() {
                    let id = evt.insert(row.to_vec())?;
                    tx.log_ins(&evt_name, id, row);
                } else {
                    evt.insert(row.into_vec())?;
                }
            }
        } else {
            let t = tables.get_mut(table).unwrap();
            for row in validated {
                if let Some(tx) = tx.as_mut() {
                    let id = t.insert(row.to_vec())?;
                    tx.log_ins(table, id, row);
                } else {
                    t.insert(row.into_vec())?;
                }
            }
        }
        Ok(n)
    }

    /// Insert rows directly into the base table, bypassing capture (bulk
    /// loader path).
    pub fn insert_direct(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let n = rows.len();
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }

    fn exec_delete(&mut self, del: &sql::Delete) -> Result<usize> {
        let matching: Vec<(RowId, Row)> = {
            let t = self
                .tables
                .get(&del.table)
                .ok_or_else(|| EngineError::NoSuchTable(del.table.clone()))?;
            match &del.predicate {
                None => t.scan().map(|(id, r)| (id, r.clone())).collect(),
                Some(pred) => {
                    let binding = del.alias.clone().unwrap_or_else(|| del.table.clone());
                    let compiled = query::compile_row_predicate(self, &del.table, &binding, pred)?;
                    // Index-accelerate keyed deletes: collect `col = const`
                    // conjuncts and probe the best covering index; the full
                    // predicate is still evaluated on the candidates.
                    let candidates: Option<Vec<RowId>> =
                        delete_probe_candidates(t, &binding, pred, self)?;
                    let mut ctx = ExecCtx::new(self);
                    let mut hits = Vec::new();
                    match candidates {
                        Some(ids) => {
                            for id in ids {
                                let Some(row) = t.get(id) else { continue };
                                if query::eval_row_predicate(&compiled, row, &mut ctx)?
                                    == Truth::True
                                {
                                    hits.push((id, row.clone()));
                                }
                            }
                        }
                        None => {
                            for (id, row) in t.scan() {
                                if query::eval_row_predicate(&compiled, row, &mut ctx)?
                                    == Truth::True
                                {
                                    hits.push((id, row.clone()));
                                }
                            }
                        }
                    }
                    hits
                }
            }
        };
        let n = matching.len();
        let is_captured = self.captured.contains(&del.table);
        let Database { tables, tx, .. } = self;
        if is_captured {
            let evt_name = del_table_name(&del.table);
            let evt = tables
                .get_mut(&evt_name)
                .expect("capture implies event table");
            for (_, row) in matching {
                // Avoid duplicate capture of the same tuple.
                if evt.find_identical(&row).is_none() {
                    if let Some(tx) = tx.as_mut() {
                        let id = evt.insert(row.to_vec())?;
                        tx.log_ins(&evt_name, id, row);
                    } else {
                        evt.insert(row.into_vec())?;
                    }
                }
            }
        } else {
            let t = tables.get_mut(&del.table).unwrap();
            for (id, row) in matching {
                t.delete_row(id);
                if let Some(tx) = tx.as_mut() {
                    tx.log_del(&del.table, row);
                }
            }
        }
        Ok(n)
    }

    /// `UPDATE` decomposes into a deletion of the old rows plus an insertion
    /// of the modified rows — exactly TINTIN's update model. With capture
    /// enabled this records one `del_T` and one `ins_T` event per row.
    fn exec_update(&mut self, upd: &sql::Update) -> Result<usize> {
        let binding = upd.alias.clone().unwrap_or_else(|| upd.table.clone());
        // Resolve assignment targets.
        let (positions, matching): (Vec<usize>, Vec<(RowId, Row)>) = {
            let t = self
                .tables
                .get(&upd.table)
                .ok_or_else(|| EngineError::NoSuchTable(upd.table.clone()))?;
            let mut positions = Vec::with_capacity(upd.assignments.len());
            for (col, _) in &upd.assignments {
                let p = t
                    .schema
                    .column_index(col)
                    .ok_or_else(|| EngineError::NoSuchColumn(format!("{}.{}", upd.table, col)))?;
                if positions.contains(&p) {
                    return Err(EngineError::InvalidDdl(format!(
                        "column '{col}' assigned twice in UPDATE"
                    )));
                }
                positions.push(p);
            }
            let matching = match &upd.predicate {
                None => t.scan().map(|(id, r)| (id, r.clone())).collect(),
                Some(pred) => {
                    let compiled = query::compile_row_predicate(self, &upd.table, &binding, pred)?;
                    let candidates = delete_probe_candidates(t, &binding, pred, self)?;
                    let mut ctx = ExecCtx::new(self);
                    let mut hits = Vec::new();
                    let ids: Vec<RowId> = match candidates {
                        Some(ids) => ids,
                        None => t.scan().map(|(id, _)| id).collect(),
                    };
                    for id in ids {
                        let Some(row) = t.get(id) else { continue };
                        if query::eval_row_predicate(&compiled, row, &mut ctx)? == Truth::True {
                            hits.push((id, row.clone()));
                        }
                    }
                    hits
                }
            };
            (positions, matching)
        };

        // Compute the new rows (assignment expressions see the old row).
        let mut compiled_values = Vec::with_capacity(upd.assignments.len());
        for (_, e) in &upd.assignments {
            compiled_values.push(query::compile_row_predicate(self, &upd.table, &binding, e)?);
        }
        let mut replacements: Vec<(RowId, Row, Vec<Value>)> = Vec::new();
        {
            let mut ctx = ExecCtx::new(self);
            for (id, old) in &matching {
                let mut new_row = old.to_vec();
                for (p, ce) in positions.iter().zip(&compiled_values) {
                    new_row[*p] = query::eval_row_scalar(ce, old, &mut ctx)?;
                }
                replacements.push((*id, old.clone(), new_row));
            }
        }
        let n = replacements.len();
        // Validate all new rows up front (types / NOT NULL / CHECK).
        let validated: Vec<Row> = {
            let t = &self.tables[&upd.table];
            replacements
                .iter()
                .map(|(_, _, new)| t.validate(new.clone()))
                .collect::<Result<_>>()?
        };
        self.check_row_constraints(&upd.table, &validated, None, TS_LATEST)?;

        if self.captured.contains(&upd.table) {
            // Record del(old) + ins(new) events; skip no-op rows.
            let del_name = del_table_name(&upd.table);
            let ins_name = ins_table_name(&upd.table);
            let logging = self.tx.is_some();
            for ((_, old, _), new) in replacements.iter().zip(validated) {
                if old.as_ref() == new.as_ref() {
                    continue;
                }
                let del = self.tables.get_mut(&del_name).unwrap();
                if del.find_identical(old).is_none() {
                    let id = del.insert(old.to_vec())?;
                    if let Some(tx) = self.tx.as_mut() {
                        tx.log_ins(&del_name, id, old.clone());
                    }
                }
                let ins = self.tables.get_mut(&ins_name).unwrap();
                if logging {
                    let id = ins.insert(new.to_vec())?;
                    if let Some(tx) = self.tx.as_mut() {
                        tx.log_ins(&ins_name, id, new);
                    }
                } else {
                    ins.insert(new.into_vec())?;
                }
            }
        } else {
            // Two-phase apply so key-shifting updates (pk = pk + 1) don't
            // trip over themselves; rolls back on any conflict. The undo
            // log is only written on full success: a failed statement has
            // already compensated itself back to a net no-op.
            let logging = self.tx.is_some();
            let t = self.tables.get_mut(&upd.table).unwrap();
            for (id, _, _) in &replacements {
                t.delete_row(*id);
            }
            let mut inserted: Vec<RowId> = Vec::new();
            let mut kept: Vec<Row> = Vec::new();
            let mut failure: Option<EngineError> = None;
            for new in validated {
                // Rows are cloned only when a transaction keeps them for
                // the undo log.
                let result = if logging {
                    let r = t.insert(new.to_vec());
                    if r.is_ok() {
                        kept.push(new);
                    }
                    r
                } else {
                    t.insert(new.into_vec())
                };
                match result {
                    Ok(id) => inserted.push(id),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                for id in inserted {
                    t.delete_row(id);
                }
                for (_, old, _) in replacements {
                    t.insert(old.into_vec())
                        .expect("restoring original rows cannot fail");
                }
                return Err(e);
            }
            if let Some(tx) = self.tx.as_mut() {
                for (_, old, _) in replacements {
                    tx.log_del(&upd.table, old);
                }
                for (id, new) in inserted.into_iter().zip(kept) {
                    tx.log_ins(&upd.table, id, new);
                }
            }
        }
        Ok(n)
    }

    // ----------------------------------------------- transaction planning

    /// Plan the effect of one DML statement against the state a transaction
    /// observes — base tables composed with its private [`TxOverlay`] —
    /// without mutating anything. The caller folds the returned
    /// [`DmlDelta`] into its overlay
    /// ([`TxOverlay::apply_delta`]); at `COMMIT` the accumulated overlay is
    /// published with [`Database::stage_overlay`] and run through
    /// `safeCommit`.
    ///
    /// Because matching happens on the overlaid state, a transaction's DML
    /// reads its own writes: a `DELETE` can remove a row the same
    /// transaction inserted (the pending insertion is retracted), and an
    /// `UPDATE` can modify it (retract + re-insert).
    pub fn plan_dml(&self, stmt: &sql::Statement, overlay: &TxOverlay) -> Result<DmlDelta> {
        self.plan_dml_at(stmt, overlay, TS_LATEST)
    }

    /// [`Database::plan_dml`] against the row versions visible at commit
    /// timestamp `snapshot` — a transaction's statements match and validate
    /// against its `BEGIN`-time state plus its own pending updates, never
    /// against rows committed concurrently (those surface at `COMMIT` as
    /// serialization conflicts instead; see
    /// [`Database::detect_conflicts`]).
    pub fn plan_dml_at(
        &self,
        stmt: &sql::Statement,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> Result<DmlDelta> {
        let delta = match stmt {
            sql::Statement::Insert(ins) => {
                let rows = self.insert_source_rows(ins, Some(overlay), snapshot)?;
                DmlDelta {
                    table: ins.table.clone(),
                    rows_affected: rows.len(),
                    ins: rows,
                    ..DmlDelta::default()
                }
            }
            sql::Statement::Delete(del) => self.plan_delete(del, overlay, snapshot)?,
            sql::Statement::Update(upd) => self.plan_update(upd, overlay, snapshot)?,
            other => {
                return Err(EngineError::Unsupported(format!(
                    "plan_dml expects INSERT / DELETE / UPDATE, got: {other}"
                )))
            }
        };
        let delta = self.drop_noop_inserts(delta, overlay, snapshot);
        // Validate uniqueness of the would-be pending state now, at
        // statement time, so a key conflict reads like any other constraint
        // error instead of surfacing as an opaque engine failure at COMMIT —
        // and so the transaction never *observes* duplicate-key state. Only
        // this statement's new rows need checking: earlier pending rows
        // were validated by the statements that proposed them.
        let mut candidate = overlay.delta(&delta.table).cloned().unwrap_or_default();
        candidate.merge(&delta);
        self.check_visible_unique(&delta.table, &delta.ins, &candidate, snapshot)?;
        Ok(delta)
    }

    /// Apply set semantics at plan time: drop planned insertions identical
    /// to a row the transaction already observes (a surviving base row, a
    /// pending insertion, or an earlier row of this same statement). These
    /// are exactly the no-ops commit-time normalization would drop — and
    /// dropping them now keeps read-your-writes free of duplicate rows, so
    /// what the transaction sees is what commit produces.
    fn drop_noop_inserts(
        &self,
        mut delta: DmlDelta,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> DmlDelta {
        if delta.ins.is_empty() {
            return delta;
        }
        let Some(t) = self.tables.get(&delta.table) else {
            // Event-table targets are raw event staging; normalization owns
            // their set semantics at commit.
            return delta;
        };
        // Pending insertions as they will stand after this statement's
        // retractions.
        let mut pending: Vec<&Row> = overlay
            .delta(&delta.table)
            .map(|d| d.ins.iter().collect())
            .unwrap_or_default();
        for row in &delta.retract_ins {
            if let Some(i) = pending.iter().position(|x| **x == *row) {
                pending.remove(i);
            }
        }
        let hidden = |row: &Row| {
            delta.del.iter().any(|r| r == row)
                || overlay.delta(&delta.table).is_some_and(|d| d.hides(row))
        };
        let mut kept: Vec<Row> = Vec::with_capacity(delta.ins.len());
        for row in std::mem::take(&mut delta.ins) {
            if pending.iter().any(|x| **x == row) || kept.contains(&row) {
                continue; // duplicate pending copy
            }
            if t.find_identical_at(&row, snapshot).is_some() && !hidden(&row) {
                continue; // identical to a surviving snapshot-visible row
            }
            kept.push(row);
        }
        delta.ins = kept;
        delta
    }

    /// Reject `new_rows` (a statement's freshly planned insertions) that
    /// would violate a unique constraint at apply time, checked against
    /// the transaction's visible state (`candidate` is the overlay as it
    /// will stand after the statement). A pending row *identical* to a
    /// visible one is allowed — that is the set-semantics no-op
    /// normalization drops — but a row sharing a unique key with a
    /// *different* visible row fails immediately. Cost is
    /// O(new × pending) per statement, not O(pending²): rows proposed by
    /// earlier statements were validated when they were planned.
    fn check_visible_unique(
        &self,
        table: &str,
        new_rows: &[Row],
        candidate: &TableDelta,
        snapshot: u64,
    ) -> Result<()> {
        let Some(t) = self.tables.get(table) else {
            // Event-table targets carry no unique indexes; a vanished base
            // table surfaces later, at stage time.
            return Ok(());
        };
        let unique_violation = |ix: &crate::table::HashIndex, key: &[Value]| {
            Err(EngineError::UniqueViolation {
                table: table.to_string(),
                index: ix.name.clone(),
                key: crate::table::format_key(key),
            })
        };
        for row in new_rows {
            for ix in t.indexes().iter().filter(|ix| ix.unique) {
                // NULL-containing keys are exempt from uniqueness. Probes
                // return version candidates; only snapshot-visible ones
                // conflict (rows committed after the snapshot surface at
                // COMMIT as serialization conflicts instead).
                let Some(key) = ix.key_of(row) else { continue };
                for &id in ix.probe(&key) {
                    let Some(base) = t.get_at(id, snapshot) else {
                        continue;
                    };
                    if candidate.hides(base) || base.as_ref() == row.as_ref() {
                        continue;
                    }
                    return unique_violation(ix, &key);
                }
                for other in &candidate.ins {
                    // `drop_noop_inserts` already removed identical copies,
                    // so an identical row here is this row's own overlay
                    // entry.
                    if other.as_ref() == row.as_ref() {
                        continue;
                    }
                    if ix.key_of(other).as_deref() == Some(&key[..]) {
                        return unique_violation(ix, &key);
                    }
                }
            }
        }
        Ok(())
    }

    /// Rows of `table` matching `pred` through `overlay`: surviving base
    /// rows (hidden-by-deletion rows excluded) and matching pending
    /// insertions, separately — the caller needs the provenance to decide
    /// between a deletion event and a retraction.
    fn visible_matches(
        &self,
        table: &str,
        alias: Option<&String>,
        pred: Option<&sql::Expr>,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> Result<(Vec<Row>, Vec<Row>)> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        let delta = overlay.delta(table);
        let mut base = Vec::new();
        let mut pending = Vec::new();
        match pred {
            None => {
                for (_, row) in t.scan_at(snapshot) {
                    if delta.is_some_and(|d| d.hides(row)) {
                        continue;
                    }
                    base.push(row.clone());
                }
                if let Some(d) = delta {
                    pending.extend(d.ins.iter().cloned());
                }
            }
            Some(pred) => {
                let binding = alias.cloned().unwrap_or_else(|| table.to_string());
                let compiled = query::compile_row_predicate(self, table, &binding, pred)?;
                let candidates = delete_probe_candidates(t, &binding, pred, self)?;
                let mut ctx = ExecCtx::with_overlay_at(self, overlay, snapshot);
                let ids: Vec<RowId> = match candidates {
                    Some(ids) => ids,
                    None => t.scan_at(snapshot).map(|(id, _)| id).collect(),
                };
                for id in ids {
                    let Some(row) = t.get_at(id, snapshot) else {
                        continue;
                    };
                    if delta.is_some_and(|d| d.hides(row)) {
                        continue;
                    }
                    if query::eval_row_predicate(&compiled, row, &mut ctx)? == Truth::True {
                        base.push(row.clone());
                    }
                }
                if let Some(d) = delta {
                    for row in &d.ins {
                        if query::eval_row_predicate(&compiled, row, &mut ctx)? == Truth::True {
                            pending.push(row.clone());
                        }
                    }
                }
            }
        }
        Ok((base, pending))
    }

    fn plan_delete(
        &self,
        del: &sql::Delete,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> Result<DmlDelta> {
        let (base, pending) = self.visible_matches(
            &del.table,
            del.alias.as_ref(),
            del.predicate.as_ref(),
            overlay,
            snapshot,
        )?;
        let rows_affected = base.len() + pending.len();
        // One deletion event removes one identical base row at apply time,
        // so extra identical matches collapse — exactly how event capture
        // deduplicates `del_T` rows.
        let mut del_rows: Vec<Row> = Vec::new();
        for row in base {
            if !del_rows.contains(&row) {
                del_rows.push(row);
            }
        }
        Ok(DmlDelta {
            table: del.table.clone(),
            rows_affected,
            del: del_rows,
            retract_ins: pending,
            ..DmlDelta::default()
        })
    }

    /// `UPDATE` decomposes into del(old) + ins(new) pairs over the visible
    /// state — TINTIN's update model, applied to the overlay instead of the
    /// event tables. Updating a row this transaction itself inserted
    /// retracts the pending insertion and proposes the modified row.
    fn plan_update(
        &self,
        upd: &sql::Update,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> Result<DmlDelta> {
        let t = self
            .tables
            .get(&upd.table)
            .ok_or_else(|| EngineError::NoSuchTable(upd.table.clone()))?;
        let binding = upd.alias.clone().unwrap_or_else(|| upd.table.clone());
        let mut positions = Vec::with_capacity(upd.assignments.len());
        for (col, _) in &upd.assignments {
            let p = t
                .schema
                .column_index(col)
                .ok_or_else(|| EngineError::NoSuchColumn(format!("{}.{}", upd.table, col)))?;
            if positions.contains(&p) {
                return Err(EngineError::InvalidDdl(format!(
                    "column '{col}' assigned twice in UPDATE"
                )));
            }
            positions.push(p);
        }
        let mut compiled_values = Vec::with_capacity(upd.assignments.len());
        for (_, e) in &upd.assignments {
            compiled_values.push(query::compile_row_predicate(self, &upd.table, &binding, e)?);
        }
        let (base, pending) = self.visible_matches(
            &upd.table,
            upd.alias.as_ref(),
            upd.predicate.as_ref(),
            overlay,
            snapshot,
        )?;
        let mut delta = DmlDelta {
            table: upd.table.clone(),
            rows_affected: base.len() + pending.len(),
            ..DmlDelta::default()
        };
        let mut ctx = ExecCtx::with_overlay_at(self, overlay, snapshot);
        let matched = base
            .iter()
            .map(|r| (r, false))
            .chain(pending.iter().map(|r| (r, true)));
        for (old, from_pending) in matched {
            let mut new_row = old.to_vec();
            for (p, ce) in positions.iter().zip(&compiled_values) {
                new_row[*p] = query::eval_row_scalar(ce, old, &mut ctx)?;
            }
            let new = t.validate(new_row)?;
            if old.as_ref() == new.as_ref() {
                continue;
            }
            if from_pending {
                delta.retract_ins.push(old.clone());
            } else if !delta.del.contains(old) {
                delta.del.push(old.clone());
            }
            delta.ins.push(new);
        }
        self.check_row_constraints(&upd.table, &delta.ins, Some(overlay), snapshot)?;
        Ok(delta)
    }

    /// Publish a transaction's private overlay into the shared `ins_T` /
    /// `del_T` event tables — the first step of a commit, performed under
    /// the [`SharedDatabase`](crate::SharedDatabase) write lock.
    ///
    /// Base tables get capture enabled on demand so their event tables
    /// exist; statements aimed directly at event tables (the session layer
    /// permits them as an escape hatch for staging events by hand) are
    /// applied in place, where the subsequent `safeCommit` normalize /
    /// apply / truncate steps treat them exactly as before the overlay
    /// design.
    ///
    /// Event rows are staged with `begin = 0`, visible to any snapshot —
    /// the single-owner / dry-run behaviour. The phased commit stages with
    /// [`Database::stage_overlay_at`] instead, so concurrent readers cannot
    /// observe the staging.
    pub fn stage_overlay(&mut self, overlay: &TxOverlay) -> Result<()> {
        self.stage_overlay_at(overlay, 0)
    }

    /// [`Database::stage_overlay`], stamping every staged event row with
    /// `begin = ts` — the committer's *unpublished* commit timestamp.
    ///
    /// This is what keeps a phased commit's staging private while its check
    /// phase runs outside the exclusive lock: a reader at any registered
    /// snapshot (or at the published clock) filters versions by
    /// `begin <= snapshot`, and `ts` is published only after the event
    /// tables are truncated again — so an `ins_T` / `del_T` / vio-view read
    /// by another session can never observe the in-flight staging. The
    /// committer's own check phase reads the event tables at
    /// [`TS_LATEST`], which sees every live version regardless of `begin`.
    pub fn stage_overlay_at(&mut self, overlay: &TxOverlay, ts: u64) -> Result<()> {
        for table in overlay.touched_tables() {
            let delta = overlay.delta(&table).expect("touched implies delta");
            if self.is_event_table(&table) {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| EngineError::NoSuchTable(table.clone()))?;
                for row in &delta.del {
                    if let Some(id) = t.find_identical(row) {
                        t.delete_row(id);
                    }
                }
                for row in &delta.ins {
                    t.insert_at(row.to_vec(), ts)?;
                }
                continue;
            }
            if !self.tables.contains_key(&table) {
                return Err(EngineError::NoSuchTable(table.clone()));
            }
            // Write-write conflicts (a planned deletion whose target a
            // concurrent commit removed, a key raced onto by a later
            // committer) are the province of [`Database::detect_conflicts`]
            // — first-committer-wins on version stamps — which commit paths
            // run immediately before staging, under the same write lock.
            // Staging itself is mechanical.
            if !self.is_captured(&table) {
                self.enable_capture(&table)?;
            }
            let ins_t = self
                .tables
                .get_mut(&ins_table_name(&table))
                .expect("capture implies event table");
            for row in &delta.ins {
                ins_t.insert_at(row.to_vec(), ts)?;
            }
            let del_t = self
                .tables
                .get_mut(&del_table_name(&table))
                .expect("capture implies event table");
            for row in &delta.del {
                if del_t.find_identical(row).is_none() {
                    del_t.insert_at(row.to_vec(), ts)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluate a constant expression (VALUES lists).
    fn eval_const_expr(&self, e: &sql::Expr) -> Result<Value> {
        query::eval_const(self, e)
    }

    /// Evaluate the schema's CHECK constraints against candidate rows.
    fn check_row_constraints(
        &self,
        table: &str,
        rows: &[Row],
        overlay: Option<&TxOverlay>,
        snapshot: u64,
    ) -> Result<()> {
        let t = &self.tables[table];
        if t.schema.checks.is_empty() {
            return Ok(());
        }
        let checks = t.schema.checks.clone();
        for check in &checks {
            let compiled = query::compile_row_predicate(self, table, table, check)?;
            let mut ctx = match overlay {
                Some(o) => ExecCtx::with_overlay_at(self, o, snapshot),
                None => ExecCtx::at_snapshot(self, snapshot),
            };
            for row in rows {
                // SQL CHECK semantics: only definite False rejects.
                if query::eval_row_predicate(&compiled, row, &mut ctx)? == Truth::False {
                    return Err(EngineError::CheckViolation {
                        table: table.to_string(),
                        detail: format!("row ({}) violates CHECK", format_row(row)),
                    });
                }
            }
        }
        Ok(())
    }
}

fn format_row(row: &[Value]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Candidate row ids for a DELETE predicate: probe the best index covered by
/// top-level `col = constant` conjuncts, or `None` for a full scan.
fn delete_probe_candidates(
    t: &Table,
    binding: &str,
    pred: &sql::Expr,
    db: &Database,
) -> Result<Option<Vec<RowId>>> {
    let mut eq: Vec<(usize, Value)> = Vec::new();
    for conj in pred.conjuncts() {
        let sql::Expr::Binary {
            op: sql::BinOp::Eq,
            left,
            right,
        } = conj
        else {
            continue;
        };
        let (colref, lit) = match (&**left, &**right) {
            (sql::Expr::Column(c), sql::Expr::Literal(l)) => (c, l),
            (sql::Expr::Literal(l), sql::Expr::Column(c)) => (c, l),
            _ => continue,
        };
        if colref.qualifier.as_deref().is_some_and(|q| q != binding) {
            continue;
        }
        let Some(pos) = t.schema.column_index(&colref.name) else {
            continue;
        };
        let v = query::eval_const(db, &sql::Expr::Literal(lit.clone()))?;
        if v.is_null() {
            // `col = NULL` matches nothing.
            return Ok(Some(Vec::new()));
        }
        if !eq.iter().any(|(p, _)| *p == pos) {
            eq.push((pos, v));
        }
    }
    if eq.is_empty() {
        return Ok(None);
    }
    let cols: Vec<usize> = eq.iter().map(|(p, _)| *p).collect();
    let Some(ix_id) = t.best_index(&cols) else {
        return Ok(None);
    };
    let ix = &t.indexes()[ix_id];
    let mut key = Vec::with_capacity(ix.columns.len());
    for c in &ix.columns {
        let (_, v) = eq.iter().find(|(p, _)| p == c).expect("covered column");
        match v.clone().coerce_for_probe(t.schema.columns[*c].ty) {
            Ok(v) => key.push(v),
            Err(_) => return Ok(Some(Vec::new())),
        }
    }
    Ok(Some(ix.probe(&key).to_vec()))
}
