//! `tintin-sqlgen` — compilation of Event Dependency Constraints into
//! standard SQL queries (paper §2, step 3, after \[4\]).
//!
//! Each EDC becomes one `SELECT` (stored as a view by the `tintin` crate):
//!
//! * every positive literal becomes a table reference in `FROM` — base
//!   tables, or the `ins_T` / `del_T` event tables — joined through shared
//!   variables;
//! * built-in literals and constant bindings go to `WHERE`;
//! * negated base and derived literals become correlated `NOT EXISTS`
//!   subqueries; derived predicates (the paper's `aux`, plus the generated
//!   `ι`/`δ`/new-state definitions) are inlined recursively, a multi-rule
//!   definition becoming a `UNION` inside the `EXISTS` — exactly the shape
//!   the paper shows for its `atLeastOneLineItem1` view.
//!
//! The emitted SQL is self-contained: it references only base tables and
//! event tables, so it can be installed on any SQL database (the paper's
//! portability claim) and, in this repo, evaluated incrementally by
//! `tintin-engine`.

use std::collections::BTreeMap;
use std::fmt;
use tintin_logic::{
    Atom, Bindings, CmpOp, Edc, Konst, Literal, Pred, Registry, SchemaCatalog, Term, Var,
};
use tintin_sql as sql;

/// Error during SQL generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlGenError {
    pub message: String,
}

impl fmt::Display for SqlGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL generation: {}", self.message)
    }
}

impl std::error::Error for SqlGenError {}

type GResult<T> = Result<T, SqlGenError>;

/// A generated incremental violation view.
#[derive(Debug, Clone)]
pub struct GeneratedView {
    /// View name (`vio_<assertion>_<denial>_<edc>`).
    pub name: String,
    pub assertion: String,
    pub denial_index: usize,
    pub edc_index: usize,
    /// The view body.
    pub query: sql::Query,
    /// `CREATE VIEW` statement text (portable SQL).
    pub sql_text: String,
    /// Event tables that must all be non-empty for the view to possibly
    /// return rows: `(is_insertion, base table)`.
    pub gate: Vec<(bool, String)>,
    /// Predicate-granular refinement of `gate` from the install-time
    /// analysis: each residual gate must have ≥ 1 qualifying event row for
    /// the view to possibly return rows. Empty when the analysis is off.
    pub residual: Vec<tintin_logic::ResidualGate>,
}

/// Generate one view per EDC.
pub fn generate_views(
    cat: &SchemaCatalog,
    reg: &Registry,
    edcs: &[Edc],
) -> GResult<Vec<GeneratedView>> {
    edcs.iter()
        .map(|edc| {
            let name = format!(
                "vio_{}_{}_{}",
                sanitize(&edc.assertion),
                edc.denial_index,
                edc.index
            );
            let mut generator = SqlGenerator::new(cat, reg);
            let query = generator.edc_query(edc)?;
            let stmt = sql::Statement::CreateView(sql::CreateView {
                name: name.clone(),
                query: query.clone(),
            });
            Ok(GeneratedView {
                name,
                assertion: edc.assertion.clone(),
                denial_index: edc.denial_index,
                edc_index: edc.index,
                sql_text: stmt.to_string(),
                query,
                gate: edc.gate.clone(),
                residual: edc.residual.clone(),
            })
        })
        .collect()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Generator state: SQL alias allocation and fresh logic variables for rule
/// inlining.
pub struct SqlGenerator<'a> {
    cat: &'a SchemaCatalog,
    reg: &'a Registry,
    next_alias: usize,
    next_var: Var,
    local_names: BTreeMap<Var, String>,
}

impl<'a> SqlGenerator<'a> {
    pub fn new(cat: &'a SchemaCatalog, reg: &'a Registry) -> Self {
        SqlGenerator {
            cat,
            reg,
            next_alias: 0,
            next_var: reg.num_vars() as Var,
            local_names: BTreeMap::new(),
        }
    }

    fn fresh_alias(&mut self) -> String {
        let a = format!("t{}", self.next_alias);
        self.next_alias += 1;
        a
    }

    fn fresh_var(&mut self, name: &str) -> Var {
        let v = self.next_var;
        self.next_var += 1;
        self.local_names.insert(v, format!("{name}_{v}"));
        v
    }

    fn var_name(&self, v: Var) -> String {
        self.local_names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| self.reg.var_name(v).to_string())
    }

    /// Build the violation query of an EDC.
    pub fn edc_query(&mut self, edc: &Edc) -> GResult<sql::Query> {
        let mut bindings: BTreeMap<Var, sql::Expr> = BTreeMap::new();
        let select = self.body_select(&edc.body, &mut bindings, Projection::Violation)?;
        Ok(sql::Query::select(select))
    }

    /// Compile a conjunctive body into a `SELECT`.
    ///
    /// `bindings` holds the enclosing scope's variable → SQL-expression map;
    /// variables first bound here are added to a local copy.
    fn body_select(
        &mut self,
        body: &[Literal],
        bindings: &mut BTreeMap<Var, sql::Expr>,
        projection: Projection,
    ) -> GResult<sql::Select> {
        let mut from: Vec<sql::TableRef> = Vec::new();
        let mut conds: Vec<sql::Expr> = Vec::new();
        // Track first-binding order for the violation projection.
        let mut bound_here: Vec<Var> = Vec::new();

        // Positive atoms: FROM items + join/constant conditions.
        for lit in body {
            let Literal::Pos(atom) = lit else { continue };
            let table = match &atom.pred {
                Pred::Base(t) => t.clone(),
                Pred::Ins(t) => format!("ins_{t}"),
                Pred::Del(t) => format!("del_{t}"),
                Pred::Derived(id) => {
                    return Err(SqlGenError {
                        message: format!(
                            "positive derived atom '{}' not inlined before SQL generation",
                            self.reg.derived(*id).name
                        ),
                    })
                }
            };
            let base = atom.pred.table().expect("extensional atom");
            let info = self.cat.table(base).ok_or_else(|| SqlGenError {
                message: format!("unknown table '{base}'"),
            })?;
            if atom.args.len() != info.arity() {
                return Err(SqlGenError {
                    message: format!(
                        "atom arity {} does not match table '{}' arity {}",
                        atom.args.len(),
                        base,
                        info.arity()
                    ),
                });
            }
            let alias = self.fresh_alias();
            from.push(sql::TableRef::Named {
                name: table,
                alias: Some(alias.clone()),
            });
            for (i, arg) in atom.args.iter().enumerate() {
                let colref = sql::Expr::qualified(alias.clone(), info.columns[i].clone());
                match arg {
                    Term::Const(k) => {
                        conds.push(sql::Expr::binary(sql::BinOp::Eq, colref, konst_expr(k)));
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(prev) => {
                            conds.push(sql::Expr::binary(sql::BinOp::Eq, colref, prev.clone()));
                        }
                        None => {
                            bindings.insert(*v, colref);
                            bound_here.push(*v);
                        }
                    },
                }
            }
        }

        // Built-ins and negations.
        for lit in body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Cmp(op, a, b) => {
                    let ea = self.term_expr(a, bindings)?;
                    let eb = self.term_expr(b, bindings)?;
                    conds.push(sql::Expr::binary(cmp_binop(*op), ea, eb));
                }
                Literal::IsNull { term, negated } => {
                    let e = self.term_expr(term, bindings)?;
                    conds.push(sql::Expr::IsNull {
                        expr: Box::new(e),
                        negated: *negated,
                    });
                }
                Literal::Neg(atom) => {
                    conds.push(self.negated_atom(atom, bindings)?);
                }
            }
        }

        let projection_items = match projection {
            Projection::ExistsProbe => vec![sql::SelectItem::Expr {
                expr: sql::Expr::Literal(sql::Lit::Int(1)),
                alias: None,
            }],
            Projection::Violation => {
                let mut items = Vec::new();
                let mut used_names: Vec<String> = Vec::new();
                for v in &bound_here {
                    let base_name = sanitize(&self.var_name(*v));
                    let mut name = base_name.clone();
                    let mut n = 1;
                    while used_names.contains(&name) {
                        n += 1;
                        name = format!("{base_name}_{n}");
                    }
                    used_names.push(name.clone());
                    items.push(sql::SelectItem::Expr {
                        expr: bindings[v].clone(),
                        alias: Some(name),
                    });
                }
                if items.is_empty() {
                    items.push(sql::SelectItem::Expr {
                        expr: sql::Expr::Literal(sql::Lit::Int(1)),
                        alias: Some("violated".into()),
                    });
                }
                items
            }
        };

        Ok(sql::Select::simple(
            matches!(projection, Projection::Violation),
            projection_items,
            from,
            sql::Expr::and_all(conds),
        ))
    }

    /// Compile a negated atom into (NOT) EXISTS SQL.
    fn negated_atom(
        &mut self,
        atom: &Atom,
        bindings: &BTreeMap<Var, sql::Expr>,
    ) -> GResult<sql::Expr> {
        match &atom.pred {
            Pred::Base(_) | Pred::Ins(_) | Pred::Del(_) => {
                // Single-atom subquery: treat as a one-literal body.
                let mut local = bindings.clone();
                let sub = self.body_select(
                    std::slice::from_ref(&Literal::Pos(atom.clone())),
                    &mut local,
                    Projection::ExistsProbe,
                )?;
                Ok(sql::Expr::Exists {
                    query: Box::new(sql::Query::select(sub)),
                    negated: true,
                })
            }
            Pred::Derived(id) => {
                let def = self.reg.derived(*id).clone();
                let mut branches: Vec<sql::Select> = Vec::new();
                for rule in &def.rules {
                    // Rename rule variables fresh, then unify head with args.
                    let mut rename: BTreeMap<Var, Term> = BTreeMap::new();
                    let mut order: Vec<Var> = Vec::new();
                    for t in &rule.head {
                        if let Term::Var(v) = t {
                            if !order.contains(v) {
                                order.push(*v);
                            }
                        }
                    }
                    for l in &rule.body {
                        for v in l.vars() {
                            if !order.contains(&v) {
                                order.push(v);
                            }
                        }
                    }
                    for v in order {
                        let name = self.var_name(v);
                        let fresh = self.fresh_var(&name);
                        rename.insert(v, Term::Var(fresh));
                    }
                    let head: Vec<Term> = rule
                        .head
                        .iter()
                        .map(|t| tintin_logic::subst_term(t, &rename))
                        .collect();
                    let rbody = tintin_logic::subst_body(&rule.body, &rename);
                    let mut unif = Bindings::default();
                    let mut ok = true;
                    for (h, a) in head.iter().zip(&atom.args) {
                        if !unif.unify(h, a) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        continue; // constant clash: this rule can't match
                    }
                    let specialized = unif.apply(&rbody);
                    let mut local = bindings.clone();
                    branches.push(self.body_select(
                        &specialized,
                        &mut local,
                        Projection::ExistsProbe,
                    )?);
                }
                if branches.is_empty() {
                    // NOT EXISTS over an empty union is trivially true.
                    return Ok(sql::Expr::Literal(sql::Lit::Bool(true)));
                }
                let mut body = sql::QueryBody::Select(Box::new(branches.remove(0)));
                for b in branches {
                    body = sql::QueryBody::Union {
                        left: Box::new(body),
                        right: Box::new(sql::QueryBody::Select(Box::new(b))),
                        all: true,
                    };
                }
                Ok(sql::Expr::Exists {
                    query: Box::new(sql::Query::new(body)),
                    negated: true,
                })
            }
        }
    }

    fn term_expr(&self, t: &Term, bindings: &BTreeMap<Var, sql::Expr>) -> GResult<sql::Expr> {
        match t {
            Term::Const(k) => Ok(konst_expr(k)),
            Term::Var(v) => bindings.get(v).cloned().ok_or_else(|| SqlGenError {
                message: format!(
                    "variable '{}' used before being bound by a positive atom",
                    self.var_name(*v)
                ),
            }),
        }
    }
}

#[derive(Clone, Copy)]
enum Projection {
    /// `SELECT 1` — inside EXISTS.
    ExistsProbe,
    /// `SELECT DISTINCT <vars>` — violation reporting.
    Violation,
}

fn konst_expr(k: &Konst) -> sql::Expr {
    match k {
        Konst::Int(v) => sql::Expr::Literal(sql::Lit::Int(*v)),
        Konst::Real(v) => sql::Expr::Literal(sql::Lit::Real(*v)),
        Konst::Str(s) => sql::Expr::Literal(sql::Lit::Str(s.clone())),
    }
}

fn cmp_binop(op: CmpOp) -> sql::BinOp {
    match op {
        CmpOp::Eq => sql::BinOp::Eq,
        CmpOp::NotEq => sql::BinOp::NotEq,
        CmpOp::Lt => sql::BinOp::Lt,
        CmpOp::LtEq => sql::BinOp::LtEq,
        CmpOp::Gt => sql::BinOp::Gt,
        CmpOp::GtEq => sql::BinOp::GtEq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tintin_logic::{translate_assertion, EdcConfig, EdcGenerator, FkInfo, TableInfo};

    fn tpch_cat() -> SchemaCatalog {
        let mut cat = SchemaCatalog::new();
        cat.add_table(
            "orders",
            TableInfo {
                columns: vec!["o_orderkey".into()],
                primary_key: vec![0],
                foreign_keys: vec![],
            },
        );
        cat.add_table(
            "lineitem",
            TableInfo {
                columns: vec!["l_orderkey".into(), "l_linenumber".into()],
                primary_key: vec![0, 1],
                foreign_keys: vec![FkInfo {
                    columns: vec![0],
                    ref_table: "orders".into(),
                    ref_columns: vec![0],
                }],
            },
        );
        cat
    }

    fn views_for(assertion_sql: &str) -> Vec<GeneratedView> {
        let cat = tpch_cat();
        let mut reg = Registry::new();
        let sql::Statement::CreateAssertion(a) = sql::parse_statement(assertion_sql).unwrap()
        else {
            panic!()
        };
        let denials = translate_assertion(&cat, &mut reg, &a).unwrap();
        let mut edcs = Vec::new();
        for d in &denials {
            let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
            edcs.extend(generator.generate(d).unwrap());
        }
        generate_views(&cat, &reg, &edcs).unwrap()
    }

    const RUNNING_EXAMPLE: &str = "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
        SELECT * FROM orders o WHERE NOT EXISTS (
            SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))";

    #[test]
    fn running_example_generates_two_views() {
        let views = views_for(RUNNING_EXAMPLE);
        assert_eq!(views.len(), 2);
        for v in &views {
            assert!(v.name.starts_with("vio_atleastonelineitem"));
            // Each generated statement must parse back.
            sql::parse_statement(&v.sql_text).expect("generated SQL must parse");
        }
    }

    #[test]
    fn edc4_view_matches_paper_shape() {
        // The paper's atLeastOneLineItem1 view:
        //   SELECT * FROM ins_orders T0
        //   WHERE NOT EXISTS (SELECT * FROM lineitem  T1 WHERE T1.l_orderkey = T0.o_orderkey)
        //     AND NOT EXISTS (SELECT * FROM ins_lineitem T1 WHERE …)
        let views = views_for(RUNNING_EXAMPLE);
        let v = views
            .iter()
            .find(|v| v.gate == vec![(true, "orders".into())])
            .unwrap();
        let text = &v.sql_text;
        assert!(text.contains("FROM ins_orders"), "{text}");
        let nots = text.matches("NOT EXISTS").count();
        assert_eq!(nots, 2, "{text}");
        assert!(text.contains("FROM lineitem"), "{text}");
        assert!(text.contains("FROM ins_lineitem"), "{text}");
    }

    #[test]
    fn edc6_view_uses_union_for_new_state() {
        let views = views_for(RUNNING_EXAMPLE);
        let v = views
            .iter()
            .find(|v| v.gate == vec![(false, "lineitem".into())])
            .unwrap();
        let text = &v.sql_text;
        // The new-state check is NOT EXISTS over ins ∪ (base − del).
        assert!(text.contains("FROM del_lineitem"), "{text}");
        assert!(text.contains("UNION"), "{text}");
        assert!(text.contains("FROM del_orders"), "{text}");
    }

    #[test]
    fn constant_conditions_appear_in_where() {
        let views = views_for(
            "CREATE ASSERTION q CHECK (NOT EXISTS (
                SELECT * FROM lineitem WHERE l_linenumber < 0))",
        );
        assert_eq!(views.len(), 1);
        assert!(views[0].sql_text.contains("< 0"), "{}", views[0].sql_text);
        assert!(views[0].sql_text.contains("ins_lineitem"));
    }

    #[test]
    fn views_project_distinct_variables() {
        let views = views_for(RUNNING_EXAMPLE);
        for v in &views {
            assert!(v.sql_text.contains("SELECT DISTINCT"), "{}", v.sql_text);
        }
    }

    #[test]
    fn join_assertion_produces_parsable_views() {
        let views = views_for(
            "CREATE ASSERTION j CHECK (NOT EXISTS (
                SELECT * FROM orders o, lineitem l
                WHERE o.o_orderkey = l.l_orderkey AND l.l_linenumber > 7))",
        );
        assert!(!views.is_empty());
        for v in &views {
            sql::parse_statement(&v.sql_text).unwrap();
        }
    }

    #[test]
    fn derived_aux_inlines_into_nested_not_exists() {
        let views = views_for(
            "CREATE ASSERTION d CHECK (NOT EXISTS (
                SELECT * FROM orders o WHERE NOT EXISTS (
                    SELECT * FROM lineitem l
                    WHERE l.l_orderkey = o.o_orderkey AND l.l_linenumber > 0)))",
        );
        for v in &views {
            // No view body references another generated view: all derived
            // predicates are inlined (self-contained SQL).
            assert!(!v.query.to_string().contains("vio_"), "{}", v.sql_text);
            sql::parse_statement(&v.sql_text).unwrap();
        }
    }

    #[test]
    fn gates_survive_to_views() {
        let views = views_for(RUNNING_EXAMPLE);
        let gates: Vec<_> = views.iter().map(|v| v.gate.clone()).collect();
        assert!(gates.contains(&vec![(true, "orders".into())]));
        assert!(gates.contains(&vec![(false, "lineitem".into())]));
    }
}
