//! A leveled, structured stderr logger.
//!
//! Hand-rolled (no external deps) and deliberately tiny: one global atomic
//! level, a `TINTIN_LOG` environment override, and line-oriented output of
//! the form
//!
//! ```text
//! 2026-08-08T12:34:56.789Z  INFO tintin_server: listening addr=127.0.0.1:4242
//! ```
//!
//! Call sites use the [`log_error!`](crate::log_error),
//! [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info) and
//! [`log_debug!`](crate::log_debug) macros, which skip formatting entirely
//! when the level is disabled.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is logged.
    Off = 0,
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded-but-running conditions (turn-aways, slow commits).
    Warn = 2,
    /// Lifecycle events (listening, shutdown).
    Info = 3,
    /// Per-connection / per-request chatter.
    Debug = 4,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parse a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// The global level. 255 = "not yet initialised": the first check resolves
/// `TINTIN_LOG` (falling back to the default passed to [`init_logger`], or
/// `Warn` if nothing ever initialises it).
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);
const UNSET: u8 = 255;

fn env_level() -> Option<Level> {
    std::env::var("TINTIN_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
}

/// Initialise the logger: `TINTIN_LOG` wins if set and valid, otherwise
/// `default` applies. Idempotent — later calls only raise/lower the level
/// if the environment doesn't override it.
pub fn init_logger(default: Level) {
    let level = env_level().unwrap_or(default);
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Set the level programmatically, overriding both env and prior init.
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

fn current_level() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let resolved = env_level().unwrap_or(Level::Warn) as u8;
    LEVEL.store(resolved, Ordering::Relaxed);
    resolved
}

/// Would a record at `level` be emitted?
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= current_level() && level != Level::Off
}

/// Emit one log line to stderr (timestamp, level, target, message). Call
/// through the `log_*!` macros so the message isn't formatted when the
/// level is disabled.
pub fn log(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    eprintln!(
        "{}  {:<5} {target}: {message}",
        format_utc_now(),
        level.label()
    );
}

/// Log at [`Level::Error`]: `log_error!("target", "msg {}", arg)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`]: `log_warn!("target", "msg {}", arg)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`]: `log_info!("target", "msg {}", arg)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`]: `log_debug!("target", "msg {}", arg)`.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Debug, $target, format_args!($($arg)*))
    };
}

// ------------------------------------------------------------- UTC timestamp

/// `YYYY-MM-DDTHH:MM:SS.mmmZ` from the system clock, computed by hand
/// (civil-from-days, Howard Hinnant's algorithm) — no chrono offline.
fn format_utc_now() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    format_utc(now.as_secs(), now.subsec_millis())
}

fn format_utc(epoch_secs: u64, millis: u32) -> String {
    let days = epoch_secs / 86_400;
    let secs_of_day = epoch_secs % 86_400;
    let (year, month, day) = civil_from_days(days as i64);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60,
    )
}

/// Gregorian calendar date from days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // month index, March = 0
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_gating() {
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_log_level(Level::Off);
        assert!(!log_enabled(Level::Error));
        set_log_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(format_utc(0, 0), "1970-01-01T00:00:00.000Z");
        // 2000-02-29 (leap day) 12:34:56.789
        assert_eq!(format_utc(951_827_696, 789), "2000-02-29T12:34:56.789Z");
        // 2026-08-08T00:00:00Z
        assert_eq!(format_utc(1_786_147_200, 0), "2026-08-08T00:00:00.000Z");
    }

    #[test]
    fn civil_from_days_round_trips_epoch_boundaries() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        assert_eq!(civil_from_days(11_017), (2000, 3, 1));
    }
}
