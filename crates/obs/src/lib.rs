#![warn(missing_docs)]
//! `tintin-obs` — the observability substrate of the TINTIN stack.
//!
//! Hand-rolled and dependency-free (the build environment is offline), this
//! crate provides the measurement primitives every other layer instruments
//! itself with:
//!
//! * **[`Counter`]** — a monotonically increasing atomic `u64` (commits,
//!   rejects, bytes, connections served);
//! * **[`Gauge`]** — an atomic `i64` that can go up and down (live
//!   connections, open sessions, row versions awaiting GC);
//! * **[`Histogram`]** — a log2-bucketed latency histogram over
//!   nanosecond durations with p50/p95/p99.9 extraction. Recording is one
//!   `leading_zeros` plus three relaxed atomic adds — cheap enough for the
//!   commit hot path;
//! * **[`Registry`]** — a named collection of the above, cheap to clone
//!   (handles share state) and snapshottable ([`Registry::snapshot`]) into
//!   an immutable [`Snapshot`] that renders three ways: human-readable text
//!   ([`render_text`]), Prometheus text exposition ([`render_prometheus`]),
//!   and JSON ([`render_json`]) for bench artifacts;
//! * **[`Stopwatch`] / [`Timer`]** — lightweight timed spans. A disabled
//!   registry ([`Registry::noop`]) makes every handle — and every span —
//!   a no-op, so instrumentation overhead can be measured honestly
//!   (metrics on vs. off) without recompiling;
//! * **a leveled stderr [`logger`]** — env-configurable
//!   (`TINTIN_LOG=error|warn|info|debug`), used by the server front-end for
//!   accept/turn-away/shutdown/slow-commit lines.
//!
//! # Conventions
//!
//! Metric names are `snake_case` with the Prometheus unit suffixes:
//! counters end in `_total`, histograms are duration-valued and end in
//! `_seconds` (recorded in nanoseconds internally; the renderers convert).
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use tintin_obs::Registry;
//!
//! let registry = Registry::new();
//! let commits = registry.counter("tintin_commits_total");
//! let latency = registry.histogram("tintin_commit_seconds");
//! commits.inc();
//! latency.record(Duration::from_micros(17));
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("tintin_commits_total"), Some(1));
//! let hist = snapshot.histogram("tintin_commit_seconds").unwrap();
//! assert_eq!(hist.count, 1);
//! assert!(hist.quantile(0.5) >= Duration::from_micros(16));
//! ```

pub mod logger;

pub use logger::{log, log_enabled, set_log_level, Level};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- primitives

/// A monotonically increasing counter. Handles from a no-op registry ignore
/// every update and always read `0`.
#[derive(Debug, Default)]
pub struct Counter {
    enabled: bool,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the counter to an externally maintained cumulative total (used
    /// to export counters another subsystem already keeps — e.g. the
    /// engine's GC pass count — without double-counting). The counter never
    /// decreases.
    pub fn record_absolute(&self, total: u64) {
        if self.enabled {
            self.value.fetch_max(total, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (live connections, row versions).
#[derive(Debug, Default)]
pub struct Gauge {
    enabled: bool,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        if self.enabled {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtract one.
    pub fn dec(&self) {
        if self.enabled {
            self.value.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Set to an absolute value (sampled gauges).
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds zero-duration samples, bucket
/// `i >= 1` holds durations in `[2^(i-1), 2^i)` nanoseconds. 64 value
/// buckets cover every representable `u64` nanosecond count (585 years).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over durations.
///
/// Recording costs one `leading_zeros` and three relaxed atomic adds;
/// quantiles are extracted from a [`HistogramSnapshot`] by walking the
/// bucket counts and interpolating linearly inside the winning bucket —
/// exact to within a factor-of-two bucket, which is plenty for latency
/// percentiles spanning nanoseconds to seconds.
#[derive(Debug)]
pub struct Histogram {
    enabled: bool,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Bucket index for a nanosecond value: 0 for 0, else `64 - leading_zeros`
/// (so bucket `i` covers `[2^(i-1), 2^i)`).
fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        64 - nanos.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`, in nanoseconds.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i`, in nanoseconds (saturating at
/// `u64::MAX` for the last bucket).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        Histogram {
            enabled,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        if !self.enabled {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A span that records its elapsed time into this histogram when
    /// dropped. On a no-op histogram the span never reads the clock.
    pub fn start_timer(self: &Arc<Self>) -> Timer {
        Timer {
            hist: self.clone(),
            start: self.enabled.then(Instant::now),
        }
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u8, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A span recording its elapsed time into a [`Histogram`] on drop.
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Option<Instant>,
}

impl Timer {
    /// Stop the span early and record it (dropping does the same).
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed());
        }
    }
}

/// A multi-lap stopwatch for phase timings: each [`Stopwatch::lap`] returns
/// the time since the previous lap (or start). Disabled stopwatches never
/// read the clock and return [`Duration::ZERO`] — the commit path's
/// instrumentation cost vanishes under a no-op registry.
#[derive(Debug)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Start (or, when `enabled` is false, construct a no-op stopwatch).
    pub fn start_if(enabled: bool) -> Self {
        Stopwatch {
            last: enabled.then(Instant::now),
        }
    }

    /// Time since the previous lap (or start); `ZERO` when disabled.
    pub fn lap(&mut self) -> Duration {
        match self.last {
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                now - prev
            }
            None => Duration::ZERO,
        }
    }
}

// ------------------------------------------------------------------ registry

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Default)]
struct RegistryInner {
    enabled: bool,
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// A named collection of metrics. Cloning the registry (or a handle from
/// it) shares state; [`Registry::snapshot`] captures an immutable,
/// renderable copy. Handle lookup takes a lock — call sites are expected to
/// resolve their handles once (at construction) and keep the `Arc`s.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: true,
                metrics: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// A no-op registry: every handle it hands out ignores updates, and
    /// [`Registry::snapshot`] is empty. Used to measure instrumentation
    /// overhead (metrics on vs. off) without recompiling.
    pub fn noop() -> Self {
        Registry::default()
    }

    /// Does this registry record anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || {
            Metric::Counter(Arc::new(Counter::new(self.inner.enabled)))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || {
            Metric::Gauge(Arc::new(Gauge::new(self.inner.enabled)))
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || {
            Metric::Histogram(Arc::new(Histogram::new(self.inner.enabled)))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        // Fast path: already registered.
        {
            let metrics = self
                .inner
                .metrics
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(m) = metrics.get(name) {
                return m.clone();
            }
        }
        let mut metrics = self
            .inner
            .metrics
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// An immutable snapshot of every registered metric, sorted by name.
    /// Empty for a no-op registry.
    pub fn snapshot(&self) -> Snapshot {
        if !self.inner.enabled {
            return Snapshot::default();
        }
        let metrics = self
            .inner
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        Snapshot {
            samples: metrics
                .iter()
                .map(|(name, m)| Sample {
                    name: name.clone(),
                    value: match m {
                        Metric::Counter(c) => SampleValue::Counter(c.get()),
                        Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                        Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

// ------------------------------------------------------------------ snapshot

/// One metric's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter's cumulative total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's captured state.
    Histogram(HistogramSnapshot),
}

/// One named metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The metric's registered name.
    pub name: String,
    /// Its captured value.
    pub value: SampleValue,
}

/// An immutable capture of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The captured metrics.
    pub samples: Vec<Sample>,
}

/// An immutable capture of a [`Histogram`]: total count, nanosecond sum,
/// and the non-empty buckets as `(bucket index, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_nanos: u64,
    /// Non-empty buckets, ascending: `(index, count)`. Bucket `i` covers
    /// `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds zero durations).
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside the
    /// winning log2 bucket. `ZERO` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            if seen + c >= rank {
                let lower = bucket_lower(i as usize) as f64;
                let upper = bucket_upper(i as usize) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                return Duration::from_nanos((lower + frac * (upper - lower)) as u64);
            }
            seen += c;
        }
        Duration::from_nanos(bucket_upper(64))
    }

    /// Mean recorded duration (`ZERO` when empty).
    pub fn mean(&self) -> Duration {
        self.sum_nanos
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

impl Snapshot {
    /// Look up a sample by name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.value)
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(SampleValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(SampleValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's captured state, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(SampleValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------- rendering

fn nanos_to_secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Render a snapshot as aligned human-readable text (the `.stats` /
/// `--stats` view). Histograms show count, mean and p50/p95/p99.9.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for s in &snapshot.samples {
        match &s.value {
            SampleValue::Counter(v) => out.push_str(&format!("{:<44} {v}\n", s.name)),
            SampleValue::Gauge(v) => out.push_str(&format!("{:<44} {v}\n", s.name)),
            SampleValue::Histogram(h) => out.push_str(&format!(
                "{:<44} count {}  mean {:?}  p50 {:?}  p95 {:?}  p99.9 {:?}\n",
                s.name,
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.999),
            )),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` lines, cumulative `_bucket{le="…"}` series ending in
/// `+Inf`, and `_sum` / `_count` series. Histogram bounds and sums are
/// converted from the internal nanoseconds to seconds.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for s in &snapshot.samples {
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n{} {v}\n", s.name, s.name));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", s.name, s.name));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {} histogram\n", s.name));
                let mut cumulative = 0u64;
                for &(i, c) in &h.buckets {
                    cumulative += c;
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {cumulative}\n",
                        s.name,
                        format_le(bucket_upper(i as usize)),
                    ));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", s.name, h.count));
                out.push_str(&format!(
                    "{}_sum {}\n{}_count {}\n",
                    s.name,
                    format_float(nanos_to_secs(h.sum_nanos)),
                    s.name,
                    h.count
                ));
            }
        }
    }
    out
}

/// An `le` bound in seconds, with enough digits to stay exact and no
/// trailing-zero noise.
fn format_le(upper_nanos: u64) -> String {
    if upper_nanos == u64::MAX {
        return "+Inf".into();
    }
    format_float(nanos_to_secs(upper_nanos))
}

fn format_float(v: f64) -> String {
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() {
        "0".into()
    } else {
        s.to_string()
    }
}

/// Render a snapshot as a JSON object keyed by metric name — counters and
/// gauges as numbers, histograms as
/// `{"count", "sum_ns", "mean_us", "p50_us", "p95_us", "p999_us"}` — so
/// bench artifacts can embed the internal counters next to the timings.
pub fn render_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{");
    for (k, s) in snapshot.samples.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": ", s.name));
        match &s.value {
            SampleValue::Counter(v) => out.push_str(&v.to_string()),
            SampleValue::Gauge(v) => out.push_str(&v.to_string()),
            SampleValue::Histogram(h) => out.push_str(&format!(
                "{{\"count\": {}, \"sum_ns\": {}, \"mean_us\": {:.1}, \
                 \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p999_us\": {:.1}}}",
                h.count,
                h.sum_nanos,
                h.mean().as_secs_f64() * 1e6,
                h.quantile(0.50).as_secs_f64() * 1e6,
                h.quantile(0.95).as_secs_f64() * 1e6,
                h.quantile(0.999).as_secs_f64() * 1e6,
            )),
        }
    }
    out.push_str("\n  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.record_absolute(3); // never decreases
        assert_eq!(c.get(), 5);
        c.record_absolute(9);
        assert_eq!(c.get(), 9);
        let g = r.gauge("g");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("x_total").inc();
        r.counter("x_total").inc();
        assert_eq!(r.counter("x_total").get(), 2);
        // A clone of the registry sees the same metrics.
        assert_eq!(r.counter("x_total").get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn bucket_math_is_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            // Every bucket's bounds contain exactly its own indexes.
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i) - 1), i);
        }
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("h_seconds");
        // 1000 samples spread over [1µs, 2µs): all in one bucket.
        for i in 0..1000u64 {
            h.record_nanos(1024 + i);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.5).as_nanos() as u64;
        let p999 = s.quantile(0.999).as_nanos() as u64;
        // p50 lands mid-bucket, p99.9 near the top; ordering always holds.
        assert!((1024..2048).contains(&p50), "p50 {p50}");
        assert!((1024..=2048).contains(&p999), "p999 {p999}");
        assert!(p50 <= p999);
        assert_eq!(s.mean().as_nanos() as u64, 1024 + 999 / 2);
    }

    #[test]
    fn histogram_quantiles_cross_buckets() {
        let r = Registry::new();
        let h = r.histogram("h_seconds");
        for _ in 0..90 {
            h.record(Duration::from_nanos(100)); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(100)); // bucket [65536, 131072)
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) < Duration::from_nanos(128));
        assert!(s.quantile(0.95) >= Duration::from_nanos(65536));
        assert_eq!(s.quantile(0.0), s.quantile(0.001)); // rank clamps to 1
    }

    #[test]
    fn empty_histogram_is_safe() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
    }

    #[test]
    fn noop_registry_records_nothing() {
        let r = Registry::noop();
        assert!(!r.is_enabled());
        let c = r.counter("c_total");
        c.inc();
        c.record_absolute(10);
        assert_eq!(c.get(), 0);
        let g = r.gauge("g");
        g.inc();
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = r.histogram("h_seconds");
        h.record(Duration::from_secs(1));
        assert_eq!(h.count(), 0);
        // A timer from a no-op histogram never reads the clock.
        h.start_timer().stop();
        assert_eq!(h.count(), 0);
        assert!(r.snapshot().samples.is_empty());
    }

    #[test]
    fn stopwatch_laps_are_monotone_and_noop_is_zero() {
        let mut sw = Stopwatch::start_if(true);
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.lap() >= Duration::from_millis(1));
        let mut off = Stopwatch::start_if(false);
        assert_eq!(off.lap(), Duration::ZERO);
    }

    #[test]
    fn timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("h_seconds");
        {
            let _t = h.start_timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.mean() >= Duration::from_millis(1));
    }

    #[test]
    fn snapshot_lookup_and_text_rendering() {
        let r = Registry::new();
        r.counter("tintin_commits_total").add(3);
        r.gauge("tintin_sessions_open").set(2);
        r.histogram("tintin_commit_seconds")
            .record(Duration::from_micros(10));
        let s = r.snapshot();
        assert_eq!(s.counter("tintin_commits_total"), Some(3));
        assert_eq!(s.gauge("tintin_sessions_open"), Some(2));
        assert_eq!(s.histogram("tintin_commit_seconds").unwrap().count, 1);
        assert_eq!(s.counter("tintin_sessions_open"), None); // kind-checked
        let text = render_text(&s);
        assert!(text.contains("tintin_commits_total"));
        assert!(text.contains("p99.9"));
    }

    #[test]
    fn prometheus_rendering_is_parseable() {
        let r = Registry::new();
        r.counter("tintin_commits_total").add(3);
        r.gauge("tintin_sessions_open").set(2);
        let h = r.histogram("tintin_commit_seconds");
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(1));
        let text = render_prometheus(&r.snapshot());
        // Every non-comment line is `name{labels}? value` with a numeric
        // value; bucket counts are cumulative and end with +Inf == count.
        let mut last_bucket = 0u64;
        let mut saw_inf = false;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            let v: f64 = value.parse().expect("numeric value");
            if name.contains("_bucket{le=") {
                assert!(v as u64 >= last_bucket, "buckets must be cumulative");
                last_bucket = v as u64;
                if name.contains("+Inf") {
                    saw_inf = true;
                    assert_eq!(v as u64, 3);
                }
            }
        }
        assert!(saw_inf, "histogram must end with an +Inf bucket");
        assert!(text.contains("# TYPE tintin_commits_total counter"));
        assert!(text.contains("# TYPE tintin_sessions_open gauge"));
        assert!(text.contains("# TYPE tintin_commit_seconds histogram"));
        assert!(text.contains("tintin_commit_seconds_count 3"));
    }

    #[test]
    fn le_bounds_render_in_seconds_without_noise() {
        assert_eq!(format_le(1024), "0.000001024");
        assert_eq!(format_le(1_000_000_000), "1");
        assert_eq!(format_le(u64::MAX), "+Inf");
        assert_eq!(format_float(0.0), "0");
    }

    #[test]
    fn json_rendering_is_structured() {
        let r = Registry::new();
        r.counter("a_total").add(1);
        r.histogram("b_seconds").record(Duration::from_micros(5));
        let json = render_json(&r.snapshot());
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p999_us\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
